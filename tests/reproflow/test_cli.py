"""CLI tests: the seeded defect fixtures, exit codes, the baseline
ratchet, SARIF emission, the ``repro flow`` subcommand, and the
meta-test that the repository's own tree analyzes clean in budget."""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from tools.reproflow.cli import RULES, main as reproflow_main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def run_flow(tree, argv, monkeypatch):
    monkeypatch.chdir(tree)
    monkeypatch.syspath_prepend(str(REPO_ROOT))
    return reproflow_main(argv)


class TestSeededDefectFixtures:
    """Each defect class yields exactly one finding, correctly placed."""

    CASES = [
        ("unseeded_flow", "RF001", "src/repro/simstep.py", 8),
        ("forbidden_edge", "RF003", "src/repro/runtime/health.py", 30),
        ("missing_bump", "RF004", "src/repro/runtime/failover.py", 20),
        ("dead_obs_name", "RF005", "src/repro/obs/names.py", 6),
        ("unregistered_obs", "RF006", "src/repro/pipeline.py", 6),
    ]

    @pytest.mark.parametrize("fixture,code,path,line", CASES)
    def test_exactly_one_finding_with_location(
        self, fixture, code, path, line, monkeypatch, capsys
    ):
        rc = run_flow(
            FIXTURES / fixture, ["src", "--no-baseline", "--json"],
            monkeypatch,
        )
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        (finding,) = doc["findings"]
        assert finding["code"] == code
        assert finding["path"] == path
        assert finding["line"] == line
        assert doc["errors"] == 1


class TestExitCodesAndRatchet:
    def test_clean_tree_exits_0(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "fine.py").write_text("x = 1\n")
        assert run_flow(tmp_path, ["src"], monkeypatch) == 0
        assert "clean" in capsys.readouterr().err

    def test_baselined_finding_never_fails(self, monkeypatch, tmp_path,
                                           capsys):
        baseline = tmp_path / "baseline.json"
        tree = FIXTURES / "unseeded_flow"
        assert (
            run_flow(
                tree,
                ["src", "--baseline", str(baseline), "--write-baseline"],
                monkeypatch,
            )
            == 0
        )
        capsys.readouterr()
        rc = run_flow(
            tree, ["src", "--baseline", str(baseline)], monkeypatch
        )
        assert rc == 0
        out = capsys.readouterr()
        assert "[baselined]" in out.out
        assert "1 baselined" in out.err

    def test_stale_baseline_entry_reported(self, tmp_path, monkeypatch,
                                           capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "fine.py").write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {"code": "RF001", "path": "gone.py",
                         "message": "paid off"}
                    ],
                }
            )
        )
        rc = run_flow(
            tmp_path, ["src", "--baseline", str(baseline)], monkeypatch
        )
        assert rc == 0
        assert "stale baseline entry" in capsys.readouterr().err

    def test_select_filters_codes(self, monkeypatch, capsys):
        rc = run_flow(
            FIXTURES / "unseeded_flow",
            ["src", "--no-baseline", "--select", "RF005"],
            monkeypatch,
        )
        assert rc == 0
        assert "clean" in capsys.readouterr().err

    def test_unknown_select_is_usage_error(self, monkeypatch, capsys):
        with pytest.raises(SystemExit) as exc:
            run_flow(
                FIXTURES / "unseeded_flow",
                ["src", "--select", "RF999"],
                monkeypatch,
            )
        assert exc.value.code == 2
        capsys.readouterr()

    def test_suppression_comment_silences_finding(self, tmp_path,
                                                  monkeypatch, capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "x.py").write_text(
            "import numpy as np\n"
            "def f():\n"
            "    rng = np.random.default_rng()\n"
            "    return rng.normal()  # reproflow: disable=RF001\n"
        )
        assert run_flow(tmp_path, ["src", "--no-baseline"], monkeypatch) == 0
        assert "clean" in capsys.readouterr().err

    def test_sarif_written(self, tmp_path, monkeypatch, capsys):
        sarif = tmp_path / "flow.sarif"
        rc = run_flow(
            FIXTURES / "unseeded_flow",
            ["src", "--no-baseline", "--sarif", str(sarif)],
            monkeypatch,
        )
        assert rc == 1
        capsys.readouterr()
        doc = json.loads(sarif.read_text())
        assert doc["runs"][0]["results"][0]["ruleId"] == "RF001"


class TestListRules:
    def test_catalog_lists_every_rule(self, capsys):
        assert reproflow_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out
        assert len(RULES) == 7


class TestReproFlowSubcommand:
    def test_repro_flow_on_fixture(self, monkeypatch, capsys):
        monkeypatch.chdir(FIXTURES / "unseeded_flow")
        monkeypatch.syspath_prepend(str(REPO_ROOT))
        assert repro_main(["flow", "--no-baseline", "src"]) == 1
        assert "RF001" in capsys.readouterr().out

    def test_repro_flow_json(self, monkeypatch, capsys):
        monkeypatch.chdir(FIXTURES / "missing_bump")
        monkeypatch.syspath_prepend(str(REPO_ROOT))
        assert repro_main(["flow", "--no-baseline", "--json", "src"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["errors"] == 1


class TestRepositoryAnalyzesClean:
    """The meta-test: all four passes on the repo's own tree, in budget."""

    def test_module_invocation_exits_0_within_30s(self):
        start = time.monotonic()
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reproflow", "src", "tools"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        elapsed = time.monotonic() - start
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stderr
        assert elapsed < 30.0

    def test_checked_in_baseline_is_empty(self):
        baseline = json.loads(
            (REPO_ROOT / "tools/reproflow/baseline.json").read_text()
        )
        assert baseline["findings"] == []
