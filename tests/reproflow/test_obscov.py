"""Bidirectional obs-coverage tests (RF005/RF006)."""

from tools.reproflow import obscov
from tools.reproflow.engine import program_from_sources

NAMES = (
    "SPAN_NAMES = frozenset(\n"
    "    {\n"
    "        'frame',\n"
    "        'health.active',\n"
    "    }\n"
    ")\n"
    "SPAN_PREFIXES = frozenset({'health.'})\n"
    "METRIC_NAMES = frozenset({'frames_total'})\n"
)

NAMES_PATH = "src/repro/obs/names.py"


def run_obscov(sources):
    program, findings = program_from_sources(sources)
    assert findings == []
    return obscov.run(program)


class TestRegisteredButNeverEmitted:
    def test_dead_span_name_flagged_at_its_line(self):
        findings = run_obscov(
            {
                NAMES_PATH: NAMES,
                "src/repro/pipeline.py": (
                    "def f(tracer, reg, state):\n"
                    "    tracer.span('frame')\n"
                    "    tracer.span('health.' + state)\n"
                    "    reg.counter('frames_total')\n"
                    "    tracer.span('ghost')\n"
                ),
            }
        )
        # 'ghost' is unregistered (RF006); everything registered is
        # emitted, so no RF005.
        assert [f.code for f in findings] == ["RF006"]

    def test_never_emitted_span_name(self):
        findings = run_obscov(
            {
                NAMES_PATH: NAMES,
                "src/repro/pipeline.py": (
                    "def f(tracer, reg, state):\n"
                    "    tracer.span('health.' + state)\n"
                    "    reg.counter('frames_total')\n"
                ),
            }
        )
        assert [(f.code, f.path, f.line) for f in findings] == [
            ("RF005", NAMES_PATH, 3)
        ]
        assert "'frame'" in findings[0].message

    def test_prefix_covered_name_counts_as_emitted(self):
        findings = run_obscov(
            {
                NAMES_PATH: NAMES,
                "src/repro/pipeline.py": (
                    "def f(tracer, reg, state):\n"
                    "    tracer.span('frame')\n"
                    "    tracer.span('health.' + state)\n"
                    "    reg.counter('frames_total')\n"
                ),
            }
        )
        # 'health.active' is covered by the dynamic 'health.' family.
        assert findings == []

    def test_unused_prefix_flagged(self):
        findings = run_obscov(
            {
                NAMES_PATH: NAMES,
                "src/repro/pipeline.py": (
                    "def f(tracer, reg):\n"
                    "    tracer.span('frame')\n"
                    "    tracer.span('health.active')\n"
                    "    reg.counter('frames_total')\n"
                ),
            }
        )
        assert [(f.code, f.line) for f in findings] == [("RF005", 7)]
        assert "prefix 'health.'" in findings[0].message

    def test_dead_metric_flagged(self):
        findings = run_obscov(
            {
                NAMES_PATH: NAMES,
                "src/repro/pipeline.py": (
                    "def f(tracer, state):\n"
                    "    tracer.span('frame')\n"
                    "    tracer.span('health.' + state)\n"
                ),
            }
        )
        assert [(f.code, f.line) for f in findings] == [("RF005", 8)]
        assert "'frames_total'" in findings[0].message


class TestEmittedButUnregistered:
    def test_unregistered_literal_flagged_at_emission(self):
        findings = run_obscov(
            {
                NAMES_PATH: NAMES,
                "src/repro/x.py": (
                    "def f(tracer, reg, state):\n"
                    "    tracer.span('frame')\n"
                    "    tracer.span('health.' + state)\n"
                    "    reg.counter('frames_total')\n"
                    "    reg.gauge('typo_total')\n"
                ),
            }
        )
        assert [(f.code, f.path, f.line) for f in findings] == [
            ("RF006", "src/repro/x.py", 5)
        ]
        assert "'typo_total'" in findings[0].message

    def test_unregistered_dynamic_prefix_flagged(self):
        findings = run_obscov(
            {
                NAMES_PATH: NAMES,
                "src/repro/x.py": (
                    "def f(tracer, reg, state):\n"
                    "    tracer.span('frame')\n"
                    "    tracer.span('health.' + state)\n"
                    "    reg.counter('frames_total')\n"
                    "    tracer.span('mystery.' + state)\n"
                ),
            }
        )
        assert [(f.code, f.line) for f in findings] == [("RF006", 5)]
        assert "prefix 'mystery.'" in findings[0].message


class TestScope:
    def test_no_names_module_means_silence(self):
        findings = run_obscov(
            {
                "src/repro/x.py": (
                    "def f(tracer):\n"
                    "    tracer.span('anything.goes')\n"
                ),
            }
        )
        assert findings == []

    def test_non_repro_modules_not_scanned(self):
        findings = run_obscov(
            {
                NAMES_PATH: NAMES,
                "src/repro/pipeline.py": (
                    "def f(tracer, reg, state):\n"
                    "    tracer.span('frame')\n"
                    "    tracer.span('health.' + state)\n"
                    "    reg.counter('frames_total')\n"
                ),
                "tools/helper.py": (
                    "def g(tracer):\n"
                    "    tracer.span('not.a.real.span')\n"
                ),
            }
        )
        assert findings == []
