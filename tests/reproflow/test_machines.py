"""State-machine extraction and model-checking tests (RF003/RF004)."""

from tools.reproflow import machines
from tools.reproflow.engine import program_from_sources
from tools.reproflow.machines import (
    EpochRule,
    MachineReport,
    MachineSpec,
    TransitionTable,
    check_table,
    extract_machine,
)
from tools.reproflow.tables import HEALTH_TABLE, MACHINE_SPECS

TABLE = TransitionTable(
    machine="demo",
    states=("A", "B", "C"),
    initial="A",
    edges=(("A", "B"), ("B", "A"), ("B", "C"), ("C", "A")),
    forbidden=(("A", "C"),),
)

MACHINE_SOURCE = (
    "import enum\n"
    "class S(enum.Enum):\n"
    "    A = 'a'\n"
    "    B = 'b'\n"
    "    C = 'c'\n"
    "def step(state, up):\n"
    "    nxt = state\n"
    "    if state is S.A:\n"
    "        if not up:\n"
    "            nxt = S.B\n"
    "    elif state is S.B:\n"
    "        if up:\n"
    "            nxt = S.A\n"
    "        else:\n"
    "            nxt = S.C\n"
    "    elif state is S.C:\n"
    "        nxt = S.A\n"
    "    return nxt\n"
)

SPEC = MachineSpec(
    module="repro.demo", enum="S", function="step", table=TABLE
)


def run_machines(sources, specs=(SPEC,), epoch_rules=(), report=None):
    program, findings = program_from_sources(sources)
    assert findings == []
    return machines.run(
        program, specs, epoch_rules, "tools/reproflow/tables.py",
        report=report,
    )


class TestCheckTable:
    def test_valid_table_passes(self):
        assert check_table(TABLE) == []
        assert check_table(HEALTH_TABLE) == []

    def test_unknown_initial(self):
        bad = TransitionTable("m", ("A",), "Z", ())
        assert any("initial" in p for p in check_table(bad))

    def test_self_loop_rejected(self):
        bad = TransitionTable("m", ("A", "B"), "A", (("A", "A"), ("A", "B")))
        assert any("self-loop" in p for p in check_table(bad))

    def test_duplicate_edge_rejected(self):
        bad = TransitionTable(
            "m", ("A", "B"), "A", (("A", "B"), ("A", "B"))
        )
        assert any("duplicate edge" in p for p in check_table(bad))

    def test_declared_and_forbidden_conflict(self):
        bad = TransitionTable(
            "m", ("A", "B"), "A", (("A", "B"), ("B", "A")),
            forbidden=(("A", "B"),),
        )
        assert any("both declared and forbidden" in p for p in check_table(bad))

    def test_unreachable_state(self):
        bad = TransitionTable(
            "m", ("A", "B", "C"), "A", (("A", "B"), ("B", "A"), ("C", "A"))
        )
        assert any("unreachable" in p for p in check_table(bad))

    def test_dead_nonterminal_state(self):
        bad = TransitionTable("m", ("A", "B"), "A", (("A", "B"),))
        assert any("no outgoing edge" in p for p in check_table(bad))

    def test_terminal_state_may_be_dead(self):
        ok = TransitionTable(
            "m", ("A", "B"), "A", (("A", "B"),), terminal=("B",)
        )
        assert check_table(ok) == []


class TestExtraction:
    def test_edges_and_handled_states_recovered(self):
        program, _ = program_from_sources({"src/repro/demo.py": MACHINE_SOURCE})
        extracted = extract_machine(program, SPEC)
        assert extracted is not None
        assert sorted((s, d) for s, d, _ in extracted.edges) == [
            ("A", "B"), ("B", "A"), ("B", "C"), ("C", "A"),
        ]
        assert sorted(extracted.handled) == ["A", "B", "C"]

    def test_missing_module_skips(self):
        program, _ = program_from_sources({"src/repro/other.py": "x = 1\n"})
        assert extract_machine(program, SPEC) is None
        report = MachineReport()
        findings = run_machines(
            {"src/repro/other.py": "x = 1\n"}, report=report
        )
        assert findings == []
        assert report.skipped == ["demo"]

    def test_real_health_machine_matches_declared_table(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        source = (repo / "src/repro/runtime/health.py").read_text()
        program, _ = program_from_sources(
            {"src/repro/runtime/health.py": source}
        )
        findings = machines.run(
            program, MACHINE_SPECS, (), "tools/reproflow/tables.py"
        )
        assert findings == []


class TestMismatches:
    def test_faithful_machine_is_clean(self):
        assert run_machines({"src/repro/demo.py": MACHINE_SOURCE}) == []

    def test_forbidden_edge_is_one_finding(self):
        source = MACHINE_SOURCE.replace(
            "    elif state is S.C:\n        nxt = S.A\n",
            "    elif state is S.C:\n        nxt = S.A\n"
            "    if state is S.A:\n        nxt = S.C\n",
        )
        findings = run_machines({"src/repro/demo.py": source})
        assert len(findings) == 1
        assert findings[0].code == "RF003"
        assert "forbidden" in findings[0].message

    def test_undeclared_edge_reported(self):
        table = TransitionTable(
            machine="demo",
            states=("A", "B", "C"),
            initial="A",
            edges=(("A", "B"), ("B", "A"), ("B", "C")),
            terminal=("C",),
        )
        spec = MachineSpec(
            module="repro.demo", enum="S", function="step", table=table
        )
        findings = run_machines(
            {"src/repro/demo.py": MACHINE_SOURCE}, specs=(spec,)
        )
        assert [f.code for f in findings] == ["RF003"]
        assert "implemented but not declared" in findings[0].message

    def test_lost_declared_edge_reported(self):
        source = MACHINE_SOURCE.replace(
            "    elif state is S.C:\n        nxt = S.A\n",
            "    elif state is S.C:\n        nxt = S.B\n",
        )
        table = TransitionTable(
            machine="demo",
            states=("A", "B", "C"),
            initial="A",
            edges=(("A", "B"), ("B", "A"), ("B", "C"), ("C", "A"),
                   ("C", "B")),
        )
        spec = MachineSpec(
            module="repro.demo", enum="S", function="step", table=table
        )
        findings = run_machines({"src/repro/demo.py": source}, specs=(spec,))
        assert [f.code for f in findings] == ["RF003"]
        assert "declared transition C->A is not implemented" in (
            findings[0].message
        )

    def test_unhandled_state_reported(self):
        source = MACHINE_SOURCE.replace(
            "    elif state is S.C:\n        nxt = S.A\n", ""
        )
        table = TransitionTable(
            machine="demo",
            states=("A", "B", "C"),
            initial="A",
            edges=(("A", "B"), ("B", "A"), ("B", "C"), ("C", "A")),
        )
        spec = MachineSpec(
            module="repro.demo", enum="S", function="step", table=table
        )
        findings = run_machines({"src/repro/demo.py": source}, specs=(spec,))
        messages = [f.message for f in findings]
        assert any("declared transition C->A" in m for m in messages)
        assert any("state C has no dispatch branch" in m for m in messages)

    def test_invalid_declared_table_anchored_at_tables(self):
        bad_table = TransitionTable(
            machine="demo", states=("A", "B", "C"), initial="Z",
            edges=(("A", "B"), ("B", "A"), ("B", "C"), ("C", "A")),
        )
        spec = MachineSpec(
            module="repro.demo", enum="S", function="step", table=bad_table
        )
        findings = run_machines(
            {"src/repro/demo.py": MACHINE_SOURCE}, specs=(spec,)
        )
        anchored = [f for f in findings if "declared table is invalid" in
                    f.message]
        assert anchored
        assert all(f.path == "tools/reproflow/tables.py" for f in anchored)


EPOCH_RULE = EpochRule(
    machine="demo-epochs",
    module="repro.fo",
    transition="Transition",
    bump="_bump",
)

FO_TEMPLATE = (
    "class Transition:\n"
    "    def __init__(self, kind, epoch):\n"
    "        self.kind = kind\n"
    "        self.epoch = epoch\n"
    "class Manager:\n"
    "    def _bump(self):\n"
    "        return 1\n"
    "    def takeover(self):\n"
    "{body}"
)


class TestEpochRule:
    def test_missing_bump_flagged(self):
        source = FO_TEMPLATE.format(
            body="        return Transition('takeover', 0)\n"
        )
        findings = run_machines(
            {"src/repro/fo.py": source}, specs=(), epoch_rules=(EPOCH_RULE,)
        )
        assert [(f.code, f.line) for f in findings] == [("RF004", 9)]
        assert "Manager.takeover" in findings[0].message

    def test_bump_before_construction_is_clean(self):
        source = FO_TEMPLATE.format(
            body=(
                "        epoch = self._bump()\n"
                "        return Transition('takeover', epoch)\n"
            )
        )
        assert (
            run_machines(
                {"src/repro/fo.py": source},
                specs=(),
                epoch_rules=(EPOCH_RULE,),
            )
            == []
        )

    def test_exempt_kind_is_skipped(self):
        rule = EpochRule(
            machine="demo-epochs",
            module="repro.fo",
            transition="Transition",
            bump="_bump",
            exempt_kinds=("observe",),
        )
        source = FO_TEMPLATE.format(
            body="        return Transition(kind='observe', epoch=0)\n"
        )
        assert (
            run_machines(
                {"src/repro/fo.py": source}, specs=(), epoch_rules=(rule,)
            )
            == []
        )
