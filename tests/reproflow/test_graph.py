"""Program-model tests: modules, symbol table, call graph, RF000."""

from tools.reproflow.engine import (
    apply_suppressions,
    collect_suppressions,
    module_name,
    program_from_sources,
    rf_finding,
)


class TestModuleNames:
    def test_src_prefix_is_stripped(self):
        assert module_name("src/repro/runtime/health.py") == (
            "repro.runtime.health"
        )

    def test_init_maps_to_package(self):
        assert module_name("src/repro/obs/__init__.py") == "repro.obs"

    def test_tools_keep_their_spine(self):
        assert module_name("tools/reproflow/engine.py") == (
            "tools.reproflow.engine"
        )


class TestSymbolTable:
    def test_functions_methods_and_enums_collected(self):
        program, findings = program_from_sources(
            {
                "src/repro/demo.py": (
                    "import enum\n"
                    "class Color(enum.Enum):\n"
                    "    RED = 'red'\n"
                    "    BLUE = 'blue'\n"
                    "class Box:\n"
                    "    def open(self):\n"
                    "        return 1\n"
                    "def free():\n"
                    "    return 2\n"
                ),
            }
        )
        assert findings == []
        module = program.modules["repro.demo"]
        assert module.enums["Color"] == ("RED", "BLUE")
        assert set(module.functions) == {"Box.open", "free"}
        assert "repro.demo.Box.open" in program.functions

    def test_relative_import_resolves_against_package(self):
        program, _ = program_from_sources(
            {
                "src/repro/pkg/__init__.py": "",
                "src/repro/pkg/a.py": "def helper():\n    return 1\n",
                "src/repro/pkg/b.py": (
                    "from .a import helper\n"
                    "def use():\n"
                    "    return helper()\n"
                ),
            }
        )
        module = program.modules["repro.pkg.b"]
        assert module.imports["helper"] == "repro.pkg.a.helper"
        assert program.call_graph["repro.pkg.b.use"] == {
            "repro.pkg.a.helper"
        }


class TestCallResolution:
    def test_class_call_resolves_to_init(self):
        program, _ = program_from_sources(
            {
                "src/repro/a.py": (
                    "class Thing:\n"
                    "    def __init__(self, x):\n"
                    "        self.x = x\n"
                ),
                "src/repro/b.py": (
                    "from repro.a import Thing\n"
                    "def make():\n"
                    "    return Thing(1)\n"
                ),
            }
        )
        assert program.call_graph["repro.b.make"] == {
            "repro.a.Thing.__init__"
        }
        (site,) = program.callers["repro.a.Thing.__init__"]
        assert site.caller.fqn == "repro.b.make"

    def test_self_method_call_resolves(self):
        program, _ = program_from_sources(
            {
                "src/repro/c.py": (
                    "class W:\n"
                    "    def a(self):\n"
                    "        return self.b()\n"
                    "    def b(self):\n"
                    "        return 1\n"
                ),
            }
        )
        assert program.call_graph["repro.c.W.a"] == {"repro.c.W.b"}


class TestParseFailures:
    def test_broken_module_yields_rf000_not_abort(self):
        program, findings = program_from_sources(
            {
                "src/repro/ok.py": "def fine():\n    return 1\n",
                "src/repro/broken.py": "def broken(:\n",
            }
        )
        assert [f.code for f in findings] == ["RF000"]
        assert findings[0].path == "src/repro/broken.py"
        assert findings[0].severity == "error"
        # The parseable module still made it into the program.
        assert "repro.ok" in program.modules
        assert "repro.broken" not in program.modules

    def test_null_bytes_yield_rf000(self):
        _, findings = program_from_sources({"src/repro/nul.py": "x = 1\0\n"})
        assert [f.code for f in findings] == ["RF000"]


class TestSuppressions:
    def test_grammar_matches_reprolint_spelling(self):
        file_level, per_line = collect_suppressions(
            "# reproflow: disable-file=RF005\n"
            "x = 1  # reproflow: disable=RF001, RF002\n"
        )
        assert file_level == {"RF005"}
        assert per_line == {2: {"RF001", "RF002"}}

    def test_apply_suppressions_drops_only_matches(self):
        source = "x = 1  # reproflow: disable=RF001\ny = 2\n"
        program, _ = program_from_sources({"src/repro/s.py": source})
        node1 = type("N", (), {"lineno": 1, "col_offset": 0})()
        node2 = type("N", (), {"lineno": 2, "col_offset": 0})()
        findings = [
            rf_finding("RF001", "src/repro/s.py", node1, "suppressed"),
            rf_finding("RF002", "src/repro/s.py", node1, "other code"),
            rf_finding("RF001", "src/repro/s.py", node2, "other line"),
        ]
        kept = apply_suppressions(findings, program)
        assert [(f.code, f.line) for f in kept] == [
            ("RF002", 1),
            ("RF001", 2),
        ]
