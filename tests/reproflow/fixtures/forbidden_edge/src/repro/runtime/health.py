"""Fixture: the health machine with a QUARANTINED->ACTIVE shortcut
(defect class b). Every declared edge and state is otherwise faithful,
so the forbidden edge is the single finding."""

import enum


class HealthState(enum.Enum):
    ACTIVE = "active"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"
    PROBATION = "probation"


class FleetHealthWatchdog:
    def observe(self, previous, healthy, ready):
        nxt = previous
        if previous is HealthState.ACTIVE:
            if not healthy:
                nxt = HealthState.SUSPECT
        elif previous is HealthState.SUSPECT:
            if healthy:
                nxt = HealthState.ACTIVE
            else:
                nxt = HealthState.QUARANTINED
        elif previous is HealthState.QUARANTINED:
            if ready:
                nxt = HealthState.PROBATION
            elif healthy:
                nxt = HealthState.ACTIVE  # RF003: forbidden shortcut (line 30)
        elif previous is HealthState.PROBATION:
            if healthy:
                nxt = HealthState.ACTIVE
            else:
                nxt = HealthState.QUARANTINED
        return nxt
