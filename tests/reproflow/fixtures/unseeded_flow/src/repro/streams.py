"""Fixture: a helper that mints an UNSEEDED stream (defect class a)."""

import numpy as np


def make_stream():
    # Unseeded root: PCG64() with no seed argument.
    return np.random.Generator(np.random.PCG64())
