"""Fixture: draws from the unseeded stream across a module boundary."""

from repro.streams import make_stream


def advance():
    rng = make_stream()
    return rng.normal()  # RF001 fires here (line 8)
