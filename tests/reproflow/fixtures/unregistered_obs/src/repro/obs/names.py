"""Fixture: registry missing a name the code emits."""

SPAN_NAMES = frozenset({"frame"})

SPAN_PREFIXES = frozenset()

METRIC_NAMES = frozenset()
