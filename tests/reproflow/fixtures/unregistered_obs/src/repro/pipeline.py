"""Fixture: emits a span name the registry does not know."""


def run_frame(tracer):
    with tracer.span("frame"):
        tracer.span("typo.span")  # RF006 fires here (line 6)
