"""Fixture: registry with one dead span name (defect class d)."""

SPAN_NAMES = frozenset(
    {
        "frame",
        "ghost.span",  # RF005: registered but never emitted (line 6)
    }
)

SPAN_PREFIXES = frozenset()

METRIC_NAMES = frozenset({"frames_total"})
