"""Fixture: emits every registered name except the ghost."""


def run_frame(tracer, registry):
    with tracer.span("frame"):
        registry.counter("frames_total").inc()
