"""Fixture: a takeover path that skips the epoch bump (defect class c)."""


class FailoverTransition:
    def __init__(self, kind, epoch):
        self.kind = kind
        self.epoch = epoch


class FailoverManager:
    def __init__(self):
        self._epoch = 0

    def _bump(self):
        self._epoch += 1
        return self._epoch

    def _takeover(self, camera_id):
        # RF004: constructs the transition with a stale epoch (line 20).
        return FailoverTransition(kind="takeover", epoch=self._epoch)

    def _handback(self, camera_id):
        epoch = self._bump()
        return FailoverTransition(kind="handback", epoch=epoch)
