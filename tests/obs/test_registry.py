"""Metrics registry unit tests."""

import pytest

from repro.obs.registry import MetricsRegistry, get_registry


class TestCounters:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("frames_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", cam=1) is not reg.counter("a", cam=2)

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")


class TestGauges:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("lag")
        g.set(5.0)
        g.add(-2.0)
        assert g.value == 3.0


class TestHistograms:
    def test_summary_stats(self):
        h = MetricsRegistry().histogram("ms")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0

    def test_empty_histogram(self):
        h = MetricsRegistry().histogram("ms")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(95) == 0.0

    def test_percentile_bounds(self):
        h = MetricsRegistry().histogram("ms")
        with pytest.raises(ValueError):
            h.percentile(101)


class TestExport:
    def test_deterministic_ordering(self):
        reg = MetricsRegistry()
        # Registered deliberately out of order.
        reg.histogram("z_hist").observe(1.0)
        reg.counter("b_counter", camera=2).inc()
        reg.counter("b_counter", camera=1).inc(3)
        reg.gauge("a_gauge").set(7)
        export = reg.export()
        keys = [(e["kind"], e["name"], tuple(sorted(e["labels"].items())))
                for e in export]
        assert keys == sorted(keys)
        assert len(export) == 4

    def test_export_content(self):
        reg = MetricsRegistry()
        reg.counter("frames", scenario="S2").inc(5)
        (entry,) = reg.export()
        assert entry == {
            "kind": "counter",
            "name": "frames",
            "labels": {"scenario": "S2"},
            "value": 5.0,
        }

    def test_two_identical_runs_export_identically(self):
        def fill(reg):
            for i in range(4):
                reg.counter("frames").inc()
                reg.histogram("ms", camera=i % 2).observe(float(i))

        a, b = MetricsRegistry(), MetricsRegistry()
        fill(a)
        fill(b)
        assert a.export() == b.export()

    def test_default_registry_is_shared(self):
        assert get_registry() is get_registry()
