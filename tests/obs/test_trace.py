"""Trace-layer unit tests: nesting, no-op mode, determinism."""

import pytest

from repro.obs.trace import (
    NOOP_TRACER,
    SpanRecord,
    Tracer,
    get_tracer,
    use_tracer,
)


def _workload(tracer):
    """A deterministic synthetic span tree."""
    with tracer.span("run", policy="balb"):
        for frame in range(3):
            with tracer.span("frame", frame=frame):
                with tracer.span("sim"):
                    pass
                for cam in range(2):
                    with tracer.span("camera", camera=cam) as sp:
                        sp.set_tag("n", cam + frame)


class TestNesting:
    def test_parent_child_links(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        records = tracer.records
        assert [r.name for r in records] == ["a", "b", "c", "d"]
        a, b, c, d = records
        assert a.parent_id is None and a.depth == 0
        assert b.parent_id == a.span_id and b.depth == 1
        assert c.parent_id == b.span_id and c.depth == 2
        assert d.parent_id == a.span_id and d.depth == 1

    def test_sibling_roots_allowed(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.parent_id for r in tracer.records] == [None, None]

    def test_durations_monotonic_and_contained(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.records
        assert outer.duration_ms >= inner.duration_ms >= 0.0
        assert inner.start_ms >= outer.start_ms

    def test_tags_recorded(self):
        tracer = Tracer()
        with tracer.span("x", camera=3, frame=7) as sp:
            sp.set_tag("late", "yes")
        (record,) = tracer.records
        assert record.tags == {"camera": 3, "frame": 7, "late": "yes"}

    def test_open_depth_tracks_stack(self):
        tracer = Tracer()
        assert tracer.open_depth == 0
        with tracer.span("a"):
            assert tracer.open_depth == 1
            with tracer.span("b"):
                assert tracer.open_depth == 2
        assert tracer.open_depth == 0

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        a = tracer.span("a")
        b = tracer.span("b")
        a.__enter__()
        b.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            a.__exit__(None, None, None)


class TestDisabledMode:
    def test_default_tracer_is_noop(self):
        assert get_tracer() is NOOP_TRACER
        assert not NOOP_TRACER.enabled

    def test_noop_span_is_shared_and_recordless(self):
        s1 = NOOP_TRACER.span("a", camera=1)
        s2 = NOOP_TRACER.span("b")
        assert s1 is s2  # one reusable object: the zero-allocation path
        with s1 as sp:
            sp.set_tag("k", "v")
        assert NOOP_TRACER.records == []
        assert sp.duration_ms == 0.0

    def test_use_tracer_activates_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with get_tracer().span("inside"):
                pass
        assert get_tracer() is NOOP_TRACER
        assert [r.name for r in tracer.records] == ["inside"]

    def test_use_tracer_restores_on_error(self):
        with pytest.raises(ValueError):
            with use_tracer(Tracer()):
                raise ValueError("boom")
        assert get_tracer() is NOOP_TRACER

    def test_nested_activation(self):
        outer, inner = Tracer(), Tracer()
        with use_tracer(outer):
            with use_tracer(inner):
                with get_tracer().span("deep"):
                    pass
            assert get_tracer() is outer
        assert [r.name for r in inner.records] == ["deep"]
        assert outer.records == []


class TestDeterminism:
    def test_identical_workloads_have_identical_structure(self):
        first, second = Tracer(), Tracer()
        _workload(first)
        _workload(second)
        def shape(t):
            return [
                (r.span_id, r.parent_id, r.name, r.depth, r.tags)
                for r in t.records
            ]
        assert shape(first) == shape(second)
        assert len(first.records) == 1 + 3 * (1 + 1 + 2)


class TestSpanRecord:
    def test_dict_round_trip(self):
        record = SpanRecord(
            span_id=4,
            parent_id=2,
            name="frame",
            depth=1,
            start_ms=1.25,
            duration_ms=0.5,
            tags={"frame": 3, "key": True},
        )
        assert SpanRecord.from_dict(record.to_dict()) == record

    def test_root_round_trip(self):
        record = SpanRecord(
            span_id=0, parent_id=None, name="run", depth=0, start_ms=0.0
        )
        assert SpanRecord.from_dict(record.to_dict()) == record
