"""Exporter tests: JSONL round trip, tree signatures, text summaries."""

import io

from repro.obs.export import (
    format_metrics_table,
    format_span_summary,
    read_spans_jsonl,
    span_tree_signature,
    spans_to_jsonl,
    summarize_spans,
    write_spans_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer


def _trace():
    tracer = Tracer()
    with tracer.span("run", policy="balb"):
        for frame in range(2):
            with tracer.span("frame", frame=frame):
                with tracer.span("camera", camera=0):
                    pass
    return tracer.records


class TestJsonlRoundTrip:
    def test_file_round_trip(self, tmp_path):
        spans = _trace()
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(spans, str(path))
        assert read_spans_jsonl(str(path)) == spans

    def test_stream_round_trip(self):
        spans = _trace()
        buf = io.StringIO()
        write_spans_jsonl(spans, buf)
        assert read_spans_jsonl(io.StringIO(buf.getvalue())) == spans

    def test_one_line_per_span(self):
        spans = _trace()
        text = spans_to_jsonl(spans)
        assert len(text.splitlines()) == len(spans)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_spans_jsonl([], str(path))
        assert read_spans_jsonl(str(path)) == []

    def test_parsed_summary_matches_registry_state(self, tmp_path):
        """JSONL -> parsed summary equals the aggregate of the live trace.

        A histogram fed the live durations must agree with the summary of
        the spans read back from disk — the exporter loses nothing.
        """
        spans = _trace()
        registry = MetricsRegistry()
        for s in spans:
            registry.histogram("span_ms", span=s.name).observe(s.duration_ms)

        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(spans, str(path))
        summary = {r["name"]: r for r in summarize_spans(read_spans_jsonl(str(path)))}

        for entry in registry.export():
            name = entry["labels"]["span"]
            assert summary[name]["count"] == entry["count"]
            assert abs(summary[name]["total_ms"] - entry["total"]) < 1e-9
            assert abs(summary[name]["max_ms"] - entry["max"]) < 1e-9


class TestTreeSignature:
    def test_structure_only(self):
        spans = _trace()
        sig = span_tree_signature(spans)
        assert sig == (
            (
                "run",
                (
                    ("frame", (("camera", ()),)),
                    ("frame", (("camera", ()),)),
                ),
            ),
        )

    def test_identical_traces_identical_signatures(self):
        assert span_tree_signature(_trace()) == span_tree_signature(_trace())

    def test_orphan_spans_become_roots(self):
        spans = _trace()[1:]  # drop the root; frames become roots
        sig = span_tree_signature(spans)
        assert [s[0] for s in sig] == ["frame", "frame"]


class TestSummaries:
    def test_summarize_counts(self):
        rows = {r["name"]: r for r in summarize_spans(_trace())}
        assert rows["run"]["count"] == 1
        assert rows["frame"]["count"] == 2
        assert rows["camera"]["count"] == 2

    def test_format_span_summary_is_table(self):
        text = format_span_summary(_trace(), title="spans")
        assert text.startswith("spans\n")
        assert "total ms" in text and "frame" in text

    def test_format_metrics_table(self):
        reg = MetricsRegistry()
        reg.counter("frames").inc(3)
        reg.histogram("ms").observe(1.0)
        text = format_metrics_table(reg, title="metrics")
        assert "frames" in text and "count=1" in text and "3" in text
