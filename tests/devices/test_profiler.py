"""Tests for offline device profiling."""

import pytest

from repro.devices.profiler import DeviceProfile, profile_device
from repro.devices.profiles import JETSON_TX2, latency_model_for


class TestProfileDevice:
    def test_profile_close_to_true_model(self):
        model = latency_model_for(JETSON_TX2)
        profile = profile_device(model, "tx2", n_runs=200, seed=0)
        assert profile.t_full == pytest.approx(model.full_frame_latency(), rel=0.05)
        for size in profile.size_set:
            assert profile.t_size(size) == pytest.approx(
                model.batch_latency(size), rel=0.05
            )
            assert profile.batch_limit(size) == model.batch_limit(size)

    def test_noise_free_profile_exact(self):
        model = latency_model_for(JETSON_TX2)
        profile = profile_device(model, "tx2", noise_std_fraction=0.0)
        assert profile.t_full == pytest.approx(model.full_frame_latency())

    def test_deterministic_given_seed(self):
        model = latency_model_for(JETSON_TX2)
        p1 = profile_device(model, "tx2", seed=7)
        p2 = profile_device(model, "tx2", seed=7)
        assert p1.t_full == p2.t_full
        assert p1.batch_latency_ms == p2.batch_latency_ms

    def test_invalid_params_raise(self):
        model = latency_model_for(JETSON_TX2)
        with pytest.raises(ValueError):
            profile_device(model, "tx2", n_runs=0)
        with pytest.raises(ValueError):
            profile_device(model, "tx2", noise_std_fraction=-0.1)


class TestDeviceProfile:
    def valid_kwargs(self):
        return dict(
            device_name="x",
            size_set=(64, 128),
            t_full=100.0,
            batch_latency_ms={64: 5.0, 128: 10.0},
            batch_limits={64: 8, 128: 4},
        )

    def test_valid_profile(self):
        p = DeviceProfile(**self.valid_kwargs())
        assert p.t_size(64) == 5.0
        assert p.batch_limit(128) == 4

    def test_unknown_size_raises(self):
        p = DeviceProfile(**self.valid_kwargs())
        with pytest.raises(KeyError):
            p.t_size(256)
        with pytest.raises(KeyError):
            p.batch_limit(256)

    def test_missing_entries_raise(self):
        kwargs = self.valid_kwargs()
        del kwargs["batch_latency_ms"][128]
        with pytest.raises(ValueError):
            DeviceProfile(**kwargs)

    def test_nonpositive_values_raise(self):
        kwargs = self.valid_kwargs()
        kwargs["t_full"] = 0.0
        with pytest.raises(ValueError):
            DeviceProfile(**kwargs)
        kwargs = self.valid_kwargs()
        kwargs["batch_limits"][64] = 0
        with pytest.raises(ValueError):
            DeviceProfile(**kwargs)
