"""Tests for the Jetson device catalogue."""

import pytest

from repro.devices.latency import LatencyModel
from repro.devices.profiles import (
    DEVICE_CATALOGUE,
    JETSON_AGX_XAVIER,
    JETSON_NANO,
    JETSON_TX2,
    JETSON_XAVIER_NX,
    device_by_name,
    latency_model_for,
)


class TestCatalogue:
    def test_all_devices_registered(self):
        assert len(DEVICE_CATALOGUE) == 4
        assert "jetson-nano" in DEVICE_CATALOGUE

    def test_lookup_by_name(self):
        assert device_by_name("jetson-tx2") is JETSON_TX2

    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="jetson-nano"):
            device_by_name("rpi4")

    def test_heterogeneity_ordering(self):
        """Nano slower than TX2 slower than Xavier NX slower than AGX."""
        fulls = [
            latency_model_for(d).full_frame_latency()
            for d in (JETSON_AGX_XAVIER, JETSON_XAVIER_NX, JETSON_TX2, JETSON_NANO)
        ]
        assert fulls == sorted(fulls)

    def test_nano_cannot_do_realtime_full_frames(self):
        """The paper's premise: full-frame inference exceeds the 100 ms
        frame interval at 10 FPS on the onboard GPUs."""
        model = latency_model_for(JETSON_NANO)
        assert model.full_frame_latency() > 100.0

    def test_slices_are_realtime_capable(self):
        """Sliced inspection of a few objects fits in a frame interval."""
        model = latency_model_for(JETSON_NANO)
        assert model.batch_latency(128) < 100.0

    def test_calibration_magnitudes(self):
        """Batch-1 640 px inference times roughly match public YOLOv5
        figures (Nano ~250 ms, TX2 ~110 ms, AGX ~35 ms)."""
        nano = LatencyModel(JETSON_NANO.gpu, size_set=(640,))
        tx2 = LatencyModel(JETSON_TX2.gpu, size_set=(640,))
        agx = LatencyModel(JETSON_AGX_XAVIER.gpu, size_set=(640,))
        assert nano.latency(640, 1) == pytest.approx(250, rel=0.2)
        assert tx2.latency(640, 1) == pytest.approx(110, rel=0.2)
        assert agx.latency(640, 1) == pytest.approx(35, rel=0.3)

    def test_custom_full_frame_size(self):
        fisheye = latency_model_for(JETSON_NANO, full_frame=(1280, 960))
        regular = latency_model_for(JETSON_NANO, full_frame=(1280, 704))
        assert fisheye.full_frame_latency() > regular.full_frame_latency()

    def test_bigger_gpu_bigger_batches(self):
        nano = latency_model_for(JETSON_NANO)
        agx = latency_model_for(JETSON_AGX_XAVIER)
        assert agx.batch_limit(256) > nano.batch_limit(256)
