"""Tests for the simulated GPU batch executor."""

import numpy as np
import pytest

from repro.devices.gpu import Batch, GPUExecutor, greedy_plan, plan_from_counts
from repro.devices.profiles import JETSON_TX2, latency_model_for


def model():
    return latency_model_for(JETSON_TX2)


class TestBatch:
    def test_invalid_batches_raise(self):
        with pytest.raises(ValueError):
            Batch(size=0, count=1)
        with pytest.raises(ValueError):
            Batch(size=64, count=0)


class TestGreedyPlan:
    def test_splits_at_batch_limit(self):
        m = model()
        limit = m.batch_limit(128)
        plan = greedy_plan({128: limit * 2 + 1}, m)
        counts = [b.count for b in plan]
        assert counts == [limit, limit, 1]

    def test_multiple_sizes_ordered(self):
        m = model()
        plan = greedy_plan({256: 1, 64: 1}, m)
        assert [b.size for b in plan] == [64, 256]

    def test_zero_count_skipped(self):
        assert greedy_plan({128: 0}, model()) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            greedy_plan({128: -1}, model())

    def test_plan_from_counts_no_split(self):
        plan = plan_from_counts({64: 3, 128: 2})
        assert [(b.size, b.count) for b in plan] == [(64, 3), (128, 2)]


class TestGPUExecutor:
    def test_deterministic_without_jitter(self):
        m = model()
        ex = GPUExecutor(m, jitter_std_fraction=0.0)
        plan = greedy_plan({128: 4}, m)
        r1 = ex.execute(plan)
        r2 = ex.execute(plan)
        assert r1.total_ms == r2.total_ms
        assert r1.total_ms == pytest.approx(m.latency(128, 4))

    def test_total_is_sum_of_batches(self):
        m = model()
        ex = GPUExecutor(m)
        plan = greedy_plan({64: 2, 128: 3}, m)
        record = ex.execute(plan)
        assert record.total_ms == pytest.approx(sum(record.batch_latencies_ms))
        assert record.n_images == 5

    def test_jitter_varies_results(self):
        m = model()
        ex = GPUExecutor(m, jitter_std_fraction=0.1, rng=np.random.default_rng(0))
        plan = greedy_plan({128: 2}, m)
        results = {ex.execute(plan).total_ms for _ in range(5)}
        assert len(results) > 1

    def test_jitter_never_negative(self):
        m = model()
        ex = GPUExecutor(m, jitter_std_fraction=2.0, rng=np.random.default_rng(1))
        for _ in range(50):
            assert ex.execute(greedy_plan({64: 1}, m)).total_ms > 0

    def test_over_limit_batch_rejected(self):
        m = model()
        ex = GPUExecutor(m)
        too_big = Batch(size=128, count=m.batch_limit(128) + 1)
        with pytest.raises(ValueError):
            ex.execute([too_big])

    def test_full_frame_execution(self):
        m = model()
        ex = GPUExecutor(m, jitter_std_fraction=0.0)
        assert ex.execute_full_frame() == pytest.approx(m.full_frame_latency())

    def test_empty_plan_zero_latency(self):
        ex = GPUExecutor(model())
        record = ex.execute([])
        assert record.total_ms == 0.0
        assert record.n_images == 0

    def test_invalid_jitter_raises(self):
        with pytest.raises(ValueError):
            GPUExecutor(model(), jitter_std_fraction=-0.1)

    def test_jittered_executor_requires_explicit_rng(self):
        # Regression: the silent default_rng(0) fallback was removed —
        # a noisy executor must own a stream seeded from the run config.
        with pytest.raises(ValueError, match="explicit rng"):
            GPUExecutor(model(), jitter_std_fraction=0.1)
