"""Tests for the analytic GPU latency model."""

import pytest

from repro.devices.latency import GPUSpec, LatencyModel, is_monotone_in_size, speedup


def small_gpu():
    return GPUSpec(
        compute_ms_per_mpx=500.0,
        kernel_overhead_ms=5.0,
        marginal_batch_fraction=0.2,
        memory_mb=30.0,
        max_batch=8,
    )


class TestGPUSpec:
    def test_invalid_specs_raise(self):
        with pytest.raises(ValueError):
            GPUSpec(0, 1, 0.2, 10)
        with pytest.raises(ValueError):
            GPUSpec(100, -1, 0.2, 10)
        with pytest.raises(ValueError):
            GPUSpec(100, 1, 0.0, 10)
        with pytest.raises(ValueError):
            GPUSpec(100, 1, 1.5, 10)
        with pytest.raises(ValueError):
            GPUSpec(100, 1, 0.2, 0)
        with pytest.raises(ValueError):
            GPUSpec(100, 1, 0.2, 10, max_batch=0)


class TestLatencyModel:
    def test_monotone_in_size(self):
        model = LatencyModel(small_gpu())
        assert is_monotone_in_size(model)

    def test_monotone_in_batch_within_limit(self):
        model = LatencyModel(small_gpu())
        limit = model.batch_limit(128)
        lats = [model.latency(128, b) for b in range(1, limit + 1)]
        assert all(a <= b + 1e-9 for a, b in zip(lats, lats[1:]))

    def test_batching_cheaper_than_serial(self):
        model = LatencyModel(small_gpu())
        limit = model.batch_limit(128)
        if limit > 1:
            batched = model.latency(128, limit)
            serial = limit * model.latency(128, 1)
            assert batched < serial

    def test_marginal_batch_cost_small(self):
        model = LatencyModel(small_gpu())
        l1 = model.latency(128, 1)
        l2 = model.latency(128, 2)
        # The second image costs a fraction of the first's compute.
        assert l2 - l1 < l1 - model.spec.kernel_overhead_ms

    def test_inflection_past_batch_limit(self):
        model = LatencyModel(small_gpu())
        limit = model.batch_limit(256)
        below = model.latency(256, limit)
        above = model.latency(256, limit + 1)
        marginal_in = model.latency(256, 2) - model.latency(256, 1)
        assert above - below > marginal_in  # steeper past the limit

    def test_batch_limit_decreases_with_size(self):
        model = LatencyModel(small_gpu())
        assert model.batch_limit(64) >= model.batch_limit(256) >= model.batch_limit(512)

    def test_batch_limit_at_least_one(self):
        model = LatencyModel(small_gpu())
        assert model.batch_limit(512) >= 1

    def test_batch_limit_capped_by_max_batch(self):
        model = LatencyModel(small_gpu())
        assert model.batch_limit(64) <= small_gpu().max_batch

    def test_full_frame_latency_larger_than_all_slices(self):
        model = LatencyModel(small_gpu())
        assert model.full_frame_latency() > model.batch_latency(128)

    def test_batch_latency_is_latency_at_limit(self):
        model = LatencyModel(small_gpu())
        size = 128
        assert model.batch_latency(size) == pytest.approx(
            model.latency(size, model.batch_limit(size))
        )

    def test_invalid_inputs_raise(self):
        model = LatencyModel(small_gpu())
        with pytest.raises(ValueError):
            model.latency(128, 0)
        with pytest.raises(ValueError):
            model.latency(0, 1)
        with pytest.raises(ValueError):
            LatencyModel(small_gpu(), size_set=())


class TestSpeedup:
    def test_speedup(self):
        assert speedup(100.0, 25.0) == pytest.approx(4.0)

    def test_zero_latency_raises(self):
        with pytest.raises(ValueError):
            speedup(100.0, 0.0)
