"""Fault injection & graceful degradation, end to end.

Acceptance criteria for the fault subsystem on the golden S1/seed-0
configuration:

* a scripted mid-run camera crash under ``balb`` completes every horizon,
  re-adopts the dead camera's shared objects within one (forced) key
  frame, and reports the unrecoverable remainder as coverage loss;
* effective recall stays strictly above the naive recall that counts the
  dead camera's objects as plain misses;
* same-seed faulted runs are bit-identical;
* the faulted key-frame span tree (fault events, retry spans) is pinned
  structurally, like the fault-free golden trees.
"""

import pytest

from repro.obs.export import span_tree_signature
from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
from repro.scenarios.aic21 import get_scenario

CRASH_SPEC = "crash:cam=1,at=12,for=10"
N_CAMERAS = 5


def _config(**overrides):
    base = dict(
        policy="balb",
        horizon=5,
        n_horizons=8,
        warmup_s=20.0,
        train_duration_s=60.0,
        seed=0,
    )
    base.update(overrides)
    return PipelineConfig(**base)


def _counter_sum(result, name):
    return sum(
        m["value"] for m in result.metrics
        if m["kind"] == "counter" and m["name"] == name
    )


def _deterministic_metrics(result):
    # everything except the one genuinely wall-clock instrument
    return [m for m in result.metrics if m["name"] != "frame_wall_ms"]


@pytest.fixture(scope="module")
def trained_s1():
    scenario = get_scenario("S1", seed=0)
    trained = train_models(scenario, _config())
    return scenario, trained


@pytest.fixture(scope="module")
def fault_free(trained_s1):
    scenario, trained = trained_s1
    return run_policy(scenario, "balb", _config(), trained)


@pytest.fixture(scope="module")
def crash_run(trained_s1):
    scenario, trained = trained_s1
    return run_policy(
        scenario, "balb", _config(faults=CRASH_SPEC), trained
    )


class TestCameraCrash:
    def test_run_completes_all_horizons(self, crash_run):
        assert crash_run.n_frames == 40

    def test_dead_camera_does_not_process(self, crash_run):
        for f in crash_run.frames:
            if 12 <= f.frame_index < 22:
                assert 1 not in f.inference_ms
            else:
                assert 1 in f.inference_ms

    def test_crash_and_rejoin_force_early_key_frames(self, crash_run):
        key_frames = [f.frame_index for f in crash_run.frames
                      if f.is_key_frame]
        # horizon boundaries plus the crash (12) and rejoin (22) failovers
        assert key_frames == [0, 5, 10, 12, 15, 20, 22, 25, 30, 35]
        assert _counter_sum(crash_run, "forced_key_frames_total") == 2

    def test_coverage_loss_reports_unrecoverable_remainder(self, crash_run):
        assert crash_run.coverage_loss() > 0.0
        lost_frames = [f.frame_index for f in crash_run.frames
                       if f.coverage_lost]
        assert lost_frames, "camera 1 must have exclusive objects sometime"
        assert all(12 <= i < 22 for i in lost_frames)
        assert _counter_sum(
            crash_run, "coverage_lost_object_frames_total"
        ) == sum(len(f.coverage_lost) for f in crash_run.frames)

    def test_recall_beats_naive_camera_drop(self, crash_run):
        effective = crash_run.object_recall()
        naive = crash_run.object_recall(count_lost_as_missed=True)
        assert effective > naive

    def test_readoption_keeps_recall_near_fault_free(self, crash_run,
                                                     fault_free):
        # Shared objects are re-adopted by overlapping cameras, so
        # effective recall stays within a few points of the healthy run.
        assert crash_run.object_recall() >= fault_free.object_recall() - 0.05

    def test_down_frames_counted_per_camera(self, crash_run):
        assert _counter_sum(crash_run, "camera_down_frames_total") == 10


class TestOtherFaultKinds:
    def test_loss_only_run_drops_messages_without_coverage_loss(
        self, trained_s1, fault_free
    ):
        scenario, trained = trained_s1
        result = run_policy(
            scenario, "balb", _config(faults="loss:p=0.3"), trained
        )
        assert result.n_frames == 40
        assert result.coverage_loss() == 0.0
        assert _counter_sum(result, "messages_dropped_total") > 0
        # stale-decision fallback degrades gently, never catastrophically
        assert result.object_recall() >= fault_free.object_recall() - 0.1

    def test_gpu_slowdown_raises_only_that_cameras_latency(
        self, trained_s1, fault_free
    ):
        scenario, trained = trained_s1
        result = run_policy(
            scenario, "balb", _config(faults="gpu:cam=0,x=3"), trained
        )
        slowed = result.per_camera_mean_latency()
        healthy = fault_free.per_camera_mean_latency()
        assert slowed[0] > 2.0 * healthy[0]
        for cam in range(1, N_CAMERAS):
            assert slowed[cam] == pytest.approx(healthy[cam])

    def test_partition_falls_back_to_stale_decision(self, trained_s1):
        scenario, trained = trained_s1
        result = run_policy(
            scenario, "balb",
            _config(faults="partition:cam=1,at=10,for=10"), trained,
        )
        # the partitioned camera keeps processing on its stale decision
        assert all(1 in f.inference_ms for f in result.frames)
        assert result.coverage_loss() == 0.0
        assert _counter_sum(result, "assignment_fallbacks_total") >= 1
        assert _counter_sum(result, "message_retries_total") >= 1


class TestDeterminism:
    def test_same_seed_faulted_runs_are_identical(self, trained_s1):
        scenario, trained = trained_s1
        config = _config(faults="heavy")
        a = run_policy(scenario, "balb", config, trained)
        b = run_policy(scenario, "balb", config, trained)
        assert _deterministic_metrics(a) == _deterministic_metrics(b)
        for fa, fb in zip(a.frames, b.frames):
            assert fa.inference_ms == fb.inference_ms
            assert fa.detected_gt == fb.detected_gt
            assert fa.coverage_lost == fb.coverage_lost

    def test_faults_disabled_matches_plain_run_exactly(self, trained_s1,
                                                       fault_free):
        scenario, trained = trained_s1
        for disabled in (None, "", "rand:"):
            result = run_policy(
                scenario, "balb", _config(faults=disabled), trained
            )
            assert result.object_recall() == fault_free.object_recall()
            assert result.mean_slowest_latency() == pytest.approx(
                fault_free.mean_slowest_latency(), rel=1e-12
            )
            assert _deterministic_metrics(result) == _deterministic_metrics(
                fault_free
            )


# -- Golden faulted trace --------------------------------------------------
#
# Crash camera 1 and partition camera 2 at frame 12 for 10 frames. The
# forced key frame at 12 must show: both fault events, four surviving
# camera key-frames (camera 1 down), and a comm phase where camera 2's
# round trip exhausts its three attempts as net.retry spans while the
# other three cameras exchange cleanly.

FAULTED_SPEC = "crash:cam=1,at=12,for=10;partition:cam=2,at=12,for=10"

_KEY_CAMERA_TREE = (
    "camera.key_frame",
    (
        ("gpu.full_frame", ()),
        ("camera.detect", ()),
        ("camera.track_refresh", ()),
    ),
)

GOLDEN_FAILOVER_KEY_FRAME = (
    (
        "frame",
        (
            ("fault.camera_crash", ()),
            ("fault.partition", ()),
            ("sim.advance", ()),
            (
                "central_stage",
                tuple([_KEY_CAMERA_TREE] * (N_CAMERAS - 1))
                + (
                    (
                        "scheduler.schedule",
                        (
                            ("scheduler.associate", ()),
                            ("scheduler.solve", (("balb.central", ()),)),
                            (
                                "scheduler.comm",
                                (
                                    ("net.round_trip", ()),
                                    (
                                        "net.round_trip",
                                        (
                                            ("net.retry", ()),
                                            ("net.retry", ()),
                                            ("net.retry", ()),
                                        ),
                                    ),
                                    ("net.round_trip", ()),
                                    ("net.round_trip", ()),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    ),
)


@pytest.fixture(scope="module")
def faulted_trace(trained_s1):
    scenario, trained = trained_s1
    config = _config(faults=FAULTED_SPEC, trace=True)
    return run_policy(scenario, "balb", config, trained)


def _subtree(spans, root):
    ids = {root.span_id}
    out = []
    for s in spans:
        if s.span_id == root.span_id or s.parent_id in ids:
            ids.add(s.span_id)
            out.append(s)
    return out


class TestGoldenFaultedTrace:
    def test_forced_key_frames_are_tagged(self, faulted_trace):
        forced = [s for s in faulted_trace.spans
                  if s.name == "frame" and s.tags.get("forced")]
        assert [s.tags["frame"] for s in forced] == [12, 22]
        assert all(s.tags["key"] for s in forced)

    def test_failover_key_frame_matches_golden_tree(self, faulted_trace):
        spans = faulted_trace.spans
        root = next(
            s for s in spans
            if s.name == "frame" and s.tags.get("frame") == 12
        )
        assert (
            span_tree_signature(_subtree(spans, root))
            == GOLDEN_FAILOVER_KEY_FRAME
        )

    def test_same_seed_faulted_traces_are_identical(self, faulted_trace,
                                                    trained_s1):
        scenario, trained = trained_s1
        config = _config(faults=FAULTED_SPEC, trace=True)
        rerun = run_policy(scenario, "balb", config, trained)
        assert span_tree_signature(rerun.spans) == span_tree_signature(
            faulted_trace.spans
        )
