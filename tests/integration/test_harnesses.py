"""Structural tests of the end-to-end experiment harnesses (scaled down).

These verify the fig12/fig13/fig14/table2 and extension harnesses produce
well-formed rows and internally consistent numbers on small runs; the
full-scale shape assertions live in ``benchmarks/``.
"""

import pytest

from repro.experiments.fig12_recall import recall_rows, run_policies
from repro.experiments.fig13_latency import (
    LATENCY_POLICIES,
    latency_rows,
    speedup_summary,
)
from repro.experiments.fig14_horizon import sweep_horizons
from repro.experiments.table2_overhead import measure_overheads
from repro.runtime.pipeline import PipelineConfig, train_models
from repro.scenarios.aic21 import get_scenario


@pytest.fixture(scope="module")
def small_config():
    return PipelineConfig(
        policy="balb",
        horizon=5,
        n_horizons=6,
        warmup_s=15.0,
        train_duration_s=40.0,
        seed=0,
    )


@pytest.fixture(scope="module")
def s2_trained(small_config):
    return train_models(get_scenario("S2", seed=0), small_config)


class TestFig12Harness:
    def test_rows_structure(self, small_config, s2_trained):
        runs = run_policies(
            "S2",
            policies=("full", "balb"),
            config=small_config,
            trained=s2_trained,
        )
        rows = recall_rows(runs)
        assert {r.policy for r in rows} == {"full", "balb"}
        for row in rows:
            assert row.scenario == "S2"
            assert 0.0 <= row.recall <= 1.0


class TestFig13Harness:
    def test_rows_and_summary_consistent(self, small_config, s2_trained):
        runs = run_policies(
            "S2",
            policies=LATENCY_POLICIES,
            config=small_config,
            trained=s2_trained,
        )
        rows = latency_rows(runs)
        summary = speedup_summary(runs)
        by_policy = {r.policy: r for r in rows}
        assert by_policy["full"].speedup_vs_full == pytest.approx(1.0)
        assert summary.balb_vs_full == pytest.approx(
            by_policy["full"].slowest_camera_ms
            / by_policy["balb"].slowest_camera_ms
        )
        for row in rows:
            assert row.slowest_camera_ms > 0


class TestFig14Harness:
    def test_sweep_rows(self, s2_trained):
        rows = sweep_horizons(
            "S2", horizons=(2, 5), frames_per_point=40, seed=0,
            trained=s2_trained,
        )
        assert [r.horizon for r in rows] == [2, 5]
        for row in rows:
            assert 0.0 <= row.recall <= 1.0
            assert row.slowest_camera_ms > 0
        # Key-frame amortization: T=5 is cheaper than T=2.
        assert rows[1].slowest_camera_ms < rows[0].slowest_camera_ms


class TestTable2Harness:
    def test_overhead_row(self, small_config):
        row = measure_overheads("S2", config=small_config, seed=0)
        assert row.scenario == "S2"
        assert row.total_ms == pytest.approx(
            row.central_ms + row.tracking_ms + row.distributed_ms
            + row.batching_ms
        )
        assert row.tracking_ms > 0
        assert row.distributed_ms < 1.0
