"""Partition-tolerant control plane, end to end.

The scripted scenario: a scheduler partition cuts cameras 1 and 2 off
from the primary for 8 frames, a standby on the cut side takes over,
then the cut heals and the deposed side's in-flight authority claim must
die. Under the legacy protocol (``epoch_fencing=False``) both sides keep
issuing at epoch 0 — split-brain, which the always-on invariant monitor
catches as an R1 violation. Under epoch fencing the same fault schedule
runs to completion: every leadership change bumped the epoch, the heal
re-broadcast at the old epoch bounces off the cut-side guards, and the
fleet reunites under a fresh epoch.
"""

import pytest

from repro.runtime.invariants import InvariantViolation
from repro.runtime.pipeline import Pipeline, PipelineConfig, train_models
from repro.scenarios.aic21 import scenario_s1

PARTITION = "sched_partition:cam=1,at=10,for=8;sched_partition:cam=2,at=10,for=8"


def small_config(**kwargs):
    defaults = dict(
        policy="balb",
        horizon=5,
        n_horizons=8,
        warmup_s=15.0,
        train_duration_s=40.0,
        seed=0,
    )
    defaults.update(kwargs)
    return PipelineConfig(**defaults)


@pytest.fixture(scope="module")
def shared():
    scenario = scenario_s1()
    trained = train_models(scenario, small_config())
    return scenario, trained


def counter_sum(result, name):
    return int(sum(
        m["value"] for m in result.metrics
        if m["kind"] == "counter" and m["name"] == name
    ))


class TestSplitBrain:
    def test_legacy_protocol_exhibits_split_brain(self, shared):
        scenario, trained = shared
        config = small_config(faults=PARTITION, epoch_fencing=False)
        with pytest.raises(InvariantViolation, match="R1 split-brain"):
            Pipeline(scenario, config, trained=trained).run()

    def test_fencing_off_without_the_monitor_runs_blind(self, shared):
        # The regression harness mode: the buggy protocol completes and
        # the damage is only visible in the metrics — which is exactly
        # why the monitor is on by default.
        scenario, trained = shared
        config = small_config(
            faults=PARTITION, epoch_fencing=False, check_invariants=False
        )
        result = Pipeline(scenario, config, trained=trained).run()
        assert result.n_frames == 40

    def test_epoch_fencing_survives_the_same_schedule(self, shared):
        scenario, trained = shared
        config = small_config(faults=PARTITION, trace=True)
        result = Pipeline(scenario, config, trained=trained).run()
        assert result.n_frames == 40
        # One cut-side takeover, one reunite after the heal.
        assert counter_sum(result, "failover_split_takeovers_total") == 1
        assert counter_sum(result, "failover_reunites_total") == 1
        # The deposed claim bounced off every cut-side camera's guard.
        assert counter_sum(result, "failover_fenced_total") == 2
        fenced = [s for s in result.spans if s.name == "wire.fenced"]
        assert {s.tags["camera"] for s in fenced} == {1, 2}
        assert all(s.tags["epoch"] == 0 for s in fenced)

    def test_epochs_are_strictly_ordered_across_transitions(self, shared):
        scenario, trained = shared
        config = small_config(faults=PARTITION, trace=True)
        result = Pipeline(scenario, config, trained=trained).run()
        split = next(
            s for s in result.spans if s.name == "failover.split_takeover"
        )
        reunite = next(
            s for s in result.spans if s.name == "failover.reunite"
        )
        assert split.tags["frame"] < reunite.tags["frame"]
        # The reunite term supersedes the cut-side term.
        assert 0 < split.tags["epoch"] < reunite.tags["epoch"]

    def test_fenced_run_is_deterministic(self, shared):
        scenario, trained = shared
        config = small_config(faults=PARTITION)
        a = Pipeline(scenario, config, trained=trained).run()
        b = Pipeline(scenario, config, trained=trained).run()
        assert a.object_recall() == b.object_recall()
        assert [f.inference_ms for f in a.frames] == (
            [f.inference_ms for f in b.frames]
        )
        assert [f.overheads_ms for f in a.frames] == (
            [f.overheads_ms for f in b.frames]
        )

    def test_partition_recovery_is_degradation_not_failure(self, shared):
        scenario, trained = shared
        config = small_config(faults=PARTITION)
        faulted = Pipeline(scenario, config, trained=trained).run()
        clean = Pipeline(
            scenario, small_config(), trained=trained
        ).run()
        # The cut costs some recall but the run stays close to clean.
        assert faulted.object_recall() >= clean.object_recall() - 0.1
