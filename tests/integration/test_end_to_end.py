"""End-to-end integration tests: the paper's qualitative claims.

These run the full pipeline (world -> cameras -> detector -> association ->
BALB -> GPU) on scaled-down configurations and assert the *shape* of the
paper's results, not absolute numbers.
"""

import pytest

from repro.runtime.metrics import speedup_vs
from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
from repro.scenarios.aic21 import get_scenario


@pytest.fixture(scope="module")
def s2_runs():
    """All five policies on S2 with shared trained models."""
    scenario = get_scenario("S2", seed=0)
    config = PipelineConfig(
        policy="balb",
        horizon=10,
        n_horizons=20,
        warmup_s=30.0,
        train_duration_s=90.0,
        seed=0,
    )
    trained = train_models(scenario, config)
    return {
        policy: run_policy(scenario, policy, config, trained)
        for policy in ("full", "balb-ind", "balb-cen", "balb", "sp")
    }


class TestPaperShapeS2:
    def test_balb_substantially_faster_than_full(self, s2_runs):
        """Headline claim: multiplicative speedups (2.45x-6.85x)."""
        assert speedup_vs(s2_runs["full"], s2_runs["balb"]) > 2.0

    def test_balb_no_slower_than_independent(self, s2_runs):
        assert (
            s2_runs["balb"].mean_slowest_latency()
            <= s2_runs["balb-ind"].mean_slowest_latency() * 1.05
        )

    def test_slicing_costs_little_recall(self, s2_runs):
        """BALB-Ind ~ Full recall (Figure 12, first observation)."""
        assert (
            s2_runs["balb-ind"].object_recall()
            >= s2_runs["full"].object_recall() - 0.08
        )

    def test_full_balb_beats_central_only_recall(self, s2_runs):
        """The distributed stage recovers recall (Figure 12)."""
        assert (
            s2_runs["balb"].object_recall()
            >= s2_runs["balb-cen"].object_recall()
        )

    def test_balb_recall_competitive_with_full(self, s2_runs):
        """'Minor degradation on detection quality'."""
        assert (
            s2_runs["balb"].object_recall()
            >= s2_runs["full"].object_recall() - 0.1
        )

    def test_all_policies_record_latency(self, s2_runs):
        for result in s2_runs.values():
            assert result.mean_slowest_latency() > 0

    def test_full_is_slowest(self, s2_runs):
        full = s2_runs["full"].mean_slowest_latency()
        for policy in ("balb-ind", "balb-cen", "balb", "sp"):
            assert s2_runs[policy].mean_slowest_latency() < full


class TestHorizonTradeoffShape:
    def test_longer_horizon_lower_latency(self):
        """Figure 14: latency falls with T."""
        scenario = get_scenario("S2", seed=1)
        base = PipelineConfig(
            policy="balb", warmup_s=20.0, train_duration_s=60.0, seed=1
        )
        trained = train_models(scenario, base)
        results = {}
        for horizon in (2, 10):
            config = PipelineConfig(
                policy="balb",
                horizon=horizon,
                n_horizons=80 // horizon,
                warmup_s=20.0,
                train_duration_s=60.0,
                seed=1,
            )
            results[horizon] = run_policy(scenario, "balb", config, trained)
        assert (
            results[10].mean_slowest_latency()
            < results[2].mean_slowest_latency()
        )
