"""Tests for persistence (repro.io) and ASCII visualization (repro.viz)."""

import csv

import numpy as np
import pytest

from repro.association.pairwise import PairwiseAssociator
from repro.association.training import (
    AssociationDataset,
    collect_association_dataset,
)
from repro.devices.profiler import profile_device
from repro.devices.profiles import JETSON_NANO, JETSON_TX2, latency_model_for
from repro.geometry.box import BBox
from repro.io import (
    export_ground_truth_csv,
    load_association_dataset,
    load_profiles,
    profile_from_dict,
    profile_to_dict,
    save_association_dataset,
    save_profiles,
)
from repro.scenarios.aic21 import scenario_s2
from repro.viz import render_ground_plane, render_workload_series, sparkline


class TestProfilePersistence:
    def test_roundtrip_single(self):
        profile = profile_device(latency_model_for(JETSON_TX2), "tx2", seed=1)
        restored = profile_from_dict(profile_to_dict(profile))
        assert restored == profile

    def test_roundtrip_fleet(self, tmp_path):
        profiles = {
            0: profile_device(latency_model_for(JETSON_TX2), "tx2", seed=1),
            3: profile_device(latency_model_for(JETSON_NANO), "nano", seed=2),
        }
        path = tmp_path / "fleet.json"
        save_profiles(profiles, path)
        restored = load_profiles(path)
        assert restored == profiles

    def test_json_is_human_readable(self, tmp_path):
        profiles = {
            0: profile_device(
                latency_model_for(JETSON_NANO), JETSON_NANO.name, seed=0
            )
        }
        path = tmp_path / "p.json"
        save_profiles(profiles, path)
        text = path.read_text()
        assert "jetson-nano" in text
        assert "t_full" in text


class TestAssociationPersistence:
    def make_dataset(self):
        rng = np.random.default_rng(0)
        ds = AssociationDataset()
        pair = ds.pair(0, 1)
        empty_pair = ds.pair(1, 0)  # all-negative pair
        for _ in range(50):
            cx = float(rng.uniform(0, 800))
            box = BBox.from_xywh(cx, 300, 50, 35)
            pair.add(box, box.translate(100, 0) if cx < 400 else None)
            empty_pair.add(box, None)
        return ds

    def test_roundtrip(self, tmp_path):
        ds = self.make_dataset()
        path = tmp_path / "assoc.npz"
        save_association_dataset(ds, path)
        restored = load_association_dataset(path)
        assert set(restored.pairs) == set(ds.pairs)
        for key, pair_ds in ds.pairs.items():
            other = restored.pairs[key]
            assert other.n_samples == pair_ds.n_samples
            assert other.n_positive == pair_ds.n_positive
            assert np.allclose(
                np.asarray(other.features), np.asarray(pair_ds.features)
            )

    def test_restored_dataset_fits_models(self, tmp_path):
        ds = self.make_dataset()
        path = tmp_path / "assoc.npz"
        save_association_dataset(ds, path)
        restored = load_association_dataset(path)
        assoc = PairwiseAssociator().fit(restored)
        visible = BBox.from_xywh(200, 300, 50, 35)
        assert assoc.predict_visible(0, 1, visible)

    def test_scenario_dataset_roundtrip(self, tmp_path):
        scenario = scenario_s2(seed=1)
        world, rig = scenario.build()
        world.run(20.0, 0.1)
        ds = collect_association_dataset(world, rig, duration_s=20.0)
        path = tmp_path / "s2.npz"
        save_association_dataset(ds, path)
        restored = load_association_dataset(path)
        assert restored.total_samples == ds.total_samples


class TestGroundTruthExport:
    def test_csv_structure(self, tmp_path):
        scenario = scenario_s2(seed=2)
        world, rig = scenario.build()
        world.run(30.0, 0.1)
        path = tmp_path / "gt.csv"
        rows = export_ground_truth_csv(world, rig, path, duration_s=10.0)
        with open(path) as f:
            reader = csv.DictReader(f)
            read_rows = list(reader)
        assert len(read_rows) == rows
        if read_rows:
            first = read_rows[0]
            assert set(first) == {
                "frame", "time_s", "camera_id", "object_id",
                "object_class", "x1", "y1", "x2", "y2",
            }
            assert float(first["x2"]) >= float(first["x1"])

    def test_invalid_duration_raises(self, tmp_path):
        scenario = scenario_s2(seed=2)
        world, rig = scenario.build()
        with pytest.raises(ValueError):
            export_ground_truth_csv(world, rig, tmp_path / "x.csv", 0.0)


class TestViz:
    def test_ground_plane_renders(self):
        scenario = scenario_s2(seed=3)
        world, rig = scenario.build()
        world.run(60.0, 0.1)
        art = render_ground_plane(world, rig, width=60, height=20)
        lines = art.splitlines()
        assert len(lines) == 21  # canvas + legend
        assert all(len(line) == 60 for line in lines[:20])
        assert "0" in art and "1" in art  # both cameras plotted
        assert "legend" in lines[-1]

    def test_small_canvas_rejected(self):
        scenario = scenario_s2(seed=3)
        world, rig = scenario.build()
        with pytest.raises(ValueError):
            render_ground_plane(world, rig, width=5, height=2)

    def test_sparkline_basic(self):
        line = sparkline([0, 5, 10])
        assert len(line) == 3
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_pools_long_series(self):
        line = sparkline(list(range(1000)), width=50)
        assert len(line) == 50

    def test_sparkline_constant_series(self):
        line = sparkline([3.0, 3.0, 3.0])
        assert len(line) == 3

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_workload_series(self):
        art = render_workload_series({0: [1, 2, 3], 1: [5, 5, 5]})
        assert "cam0" in art and "cam1" in art
        assert "max  3" in art or "max 3" in art.replace("  ", " ")
