"""Golden regression run: all five policies on S1 with pinned results.

Unlike ``test_end_to_end`` (which asserts the paper's *qualitative* shape),
this module pins the exact numbers and the exact trace structure of one
seeded configuration. Any change to the scheduler, simulator, policies, or
instrumentation that shifts behaviour shows up here first.

If a change is *intentional*, regenerate the golden values by running the
fixture configuration and updating the constants below.
"""

import pytest

from repro.obs.export import (
    read_spans_jsonl,
    span_tree_signature,
    write_spans_jsonl,
)
from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
from repro.scenarios.aic21 import get_scenario

POLICIES = ("full", "balb-ind", "balb-cen", "balb", "sp")

# Golden values for S1, seed=0, horizon=5, n_horizons=8, warmup_s=20,
# train_duration_s=60 (generated on the reference configuration).
GOLDEN = {
    "full": {"recall": 0.997980, "latency": 688.641818},
    "balb-ind": {"recall": 0.991919, "latency": 345.163701},
    "balb-cen": {"recall": 0.953535, "latency": 138.509524},
    "balb": {"recall": 0.979798, "latency": 140.025011},
    "sp": {"recall": 0.911111, "latency": 141.157876},
}

N_CAMERAS = 5


def _config():
    return PipelineConfig(
        policy="balb",
        horizon=5,
        n_horizons=8,
        warmup_s=20.0,
        train_duration_s=60.0,
        seed=0,
        trace=True,
    )


@pytest.fixture(scope="module")
def golden_runs():
    scenario = get_scenario("S1", seed=0)
    config = _config()
    trained = train_models(scenario, config)
    runs = {
        policy: run_policy(scenario, policy, config, trained)
        for policy in POLICIES
    }
    return scenario, config, trained, runs


class TestGoldenNumbers:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_recall_matches_golden(self, golden_runs, policy):
        _, _, _, runs = golden_runs
        assert runs[policy].object_recall() == pytest.approx(
            GOLDEN[policy]["recall"], abs=0.02
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_latency_matches_golden(self, golden_runs, policy):
        _, _, _, runs = golden_runs
        assert runs[policy].mean_slowest_latency() == pytest.approx(
            GOLDEN[policy]["latency"], rel=5e-3
        )


# -- Golden trace structure ------------------------------------------------

def _key_camera_tree():
    return (
        "camera.key_frame",
        (
            ("gpu.full_frame", ()),
            ("camera.detect", ()),
            ("camera.track_refresh", ()),
        ),
    )


def _regular_camera_tree(has_gpu_batch):
    steps = [
        ("camera.flow_predict", ()),
        ("camera.policy_select", ()),
        ("camera.new_regions", ()),
        ("camera.slice", ()),
    ]
    if has_gpu_batch:
        steps.append(("gpu.execute", ()))
    steps += [("camera.detect", ()), ("camera.track_refresh", ())]
    return ("camera.regular_frame", tuple(steps))


GOLDEN_KEY_FRAME = (
    (
        "frame",
        (
            ("sim.advance", ()),
            (
                "central_stage",
                tuple([_key_camera_tree()] * N_CAMERAS)
                + (
                    (
                        "scheduler.schedule",
                        (
                            ("scheduler.associate", ()),
                            ("scheduler.solve", (("balb.central", ()),)),
                            (
                                "scheduler.comm",
                                tuple(
                                    [("net.round_trip", ())] * N_CAMERAS
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    ),
)

# Which cameras had slices batched on the first regular frame of the golden
# balb run (deterministic for seed=0).
GOLDEN_REGULAR_GPU_PATTERN = (True, True, False, True, False)

GOLDEN_REGULAR_FRAME = (
    (
        "frame",
        (
            ("sim.advance", ()),
            (
                "distributed_stage",
                tuple(
                    _regular_camera_tree(g)
                    for g in GOLDEN_REGULAR_GPU_PATTERN
                ),
            ),
        ),
    ),
)


def _frame_subtree(spans, want_key):
    root = next(
        s
        for s in spans
        if s.name == "frame" and bool(s.tags.get("key")) == want_key
    )
    ids = {root.span_id}
    out = []
    for s in spans:
        if s.span_id == root.span_id or s.parent_id in ids:
            ids.add(s.span_id)
            out.append(s)
    return out


class TestGoldenTrace:
    def test_trace_is_complete(self, golden_runs):
        """Every frame appears in the trace under a single root."""
        _, config, _, runs = golden_runs
        spans = runs["balb"].spans
        roots = [s for s in spans if s.parent_id is None]
        assert [s.name for s in roots] == ["run"]
        frames = [s for s in spans if s.name == "frame"]
        assert len(frames) == config.horizon * config.n_horizons
        ids = {s.span_id for s in spans}
        assert all(
            s.parent_id in ids for s in spans if s.parent_id is not None
        )

    def test_key_frame_matches_golden_tree(self, golden_runs):
        _, _, _, runs = golden_runs
        subtree = _frame_subtree(runs["balb"].spans, want_key=True)
        assert span_tree_signature(subtree) == GOLDEN_KEY_FRAME

    def test_regular_frame_matches_golden_tree(self, golden_runs):
        _, _, _, runs = golden_runs
        subtree = _frame_subtree(runs["balb"].spans, want_key=False)
        assert span_tree_signature(subtree) == GOLDEN_REGULAR_FRAME

    def test_same_seed_runs_have_identical_span_trees(self, golden_runs):
        """Acceptance criterion: tracing is structurally deterministic."""
        scenario, config, trained, runs = golden_runs
        rerun = run_policy(scenario, "balb", config, trained)
        assert span_tree_signature(rerun.spans) == span_tree_signature(
            runs["balb"].spans
        )

    def test_trace_round_trips_through_jsonl(self, golden_runs, tmp_path):
        _, _, _, runs = golden_runs
        path = tmp_path / "golden.jsonl"
        write_spans_jsonl(runs["balb"].spans, str(path))
        restored = read_spans_jsonl(str(path))
        assert restored == runs["balb"].spans

    def test_untraced_run_matches_traced_numbers(self, golden_runs):
        """Tracing must not perturb the simulation itself."""
        scenario, config, trained, runs = golden_runs
        quiet = PipelineConfig(**{**config.__dict__, "trace": False})
        result = run_policy(scenario, "balb", quiet, trained)
        assert result.spans == []
        assert result.mean_slowest_latency() == pytest.approx(
            runs["balb"].mean_slowest_latency(), rel=1e-12
        )
        assert result.object_recall() == pytest.approx(
            runs["balb"].object_recall(), rel=1e-12
        )
