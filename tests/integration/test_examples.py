"""Smoke tests for the example scripts.

Each example must at least compile and expose a ``main`` function; the
cheap instance-level examples are executed end to end.
"""

import pathlib
import py_compile
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Examples cheap enough to execute fully in the unit-test suite.
FAST_EXAMPLES = ("scheduler_playground.py", "resource_tradeoffs.py")


def test_examples_directory_populated():
    names = {p.name for p in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable minimum, comfortably exceeded


@pytest.mark.parametrize(
    "path", ALL_EXAMPLES, ids=[p.name for p in ALL_EXAMPLES]
)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize(
    "path", ALL_EXAMPLES, ids=[p.name for p in ALL_EXAMPLES]
)
def test_example_has_main_and_docstring(path):
    source = path.read_text()
    assert source.lstrip().startswith('"""'), f"{path.name} lacks a docstring"
    assert "def main(" in source, f"{path.name} lacks a main()"
    assert '__name__ == "__main__"' in source


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_examples_run(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report
