"""Golden wall around ``--runtime event`` (ISSUE 6).

Two contracts are pinned here:

* **Identity** — with ingest bursts disabled, the event runtime is
  byte-identical to the sync runtime: same ``FrameRecord`` list, same
  metrics (minus the host-time ``frame_wall_ms`` histogram), same span
  tree — for all five policies on S1 and for BALB on S2/S3.
* **Burst golden** — S1 under the ``ingest`` chaos preset has its own
  checked-in span trees (a stall frame and a backlog-release frame) and
  exact ingest-ledger counters, so the burst path can't drift silently.

If a change is *intentional*, regenerate the constants by running the
fixture configuration and updating the values below.
"""

import pytest

from repro.obs.export import span_tree_signature
from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
from repro.scenarios.aic21 import get_scenario

POLICIES = ("full", "balb-ind", "balb-cen", "balb", "sp")
INGEST_POLICIES = (
    "drop-oldest", "degrade-to-distributed", "coalesce-to-key-frame"
)


def _config(**overrides):
    base = dict(
        policy="balb", horizon=5, n_horizons=4, warmup_s=5.0,
        train_duration_s=20.0, seed=0, trace=True,
    )
    base.update(overrides)
    return PipelineConfig(**base)


def _stable_metrics(result):
    """Metrics under the identity contract (host wall time excluded)."""
    return [m for m in result.metrics if m["name"] != "frame_wall_ms"]


@pytest.fixture(scope="module")
def s1_setup():
    scenario = get_scenario("S1", seed=0)
    config = _config()
    return scenario, config, train_models(scenario, config)


class TestSyncEventIdentity:
    """No bursts → the event runtime must be byte-identical to sync."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_s1_identity_for_every_policy(self, s1_setup, policy):
        scenario, config, trained = s1_setup
        sync = run_policy(scenario, policy, config, trained)
        event = run_policy(
            scenario, policy,
            PipelineConfig(**{**config.__dict__, "runtime": "event"}),
            trained,
        )
        assert event.frames == sync.frames
        assert _stable_metrics(event) == _stable_metrics(sync)
        assert span_tree_signature(event.spans) == span_tree_signature(
            sync.spans
        )

    @pytest.mark.parametrize("scenario_name", ("S2", "S3"))
    def test_identity_holds_on_other_scenarios(self, scenario_name):
        scenario = get_scenario(scenario_name, seed=0)
        config = _config(n_horizons=3)
        trained = train_models(scenario, config)
        sync = run_policy(scenario, "balb", config, trained)
        event = run_policy(
            scenario, "balb",
            PipelineConfig(**{**config.__dict__, "runtime": "event"}),
            trained,
        )
        assert event.frames == sync.frames
        assert _stable_metrics(event) == _stable_metrics(sync)
        assert span_tree_signature(event.spans) == span_tree_signature(
            sync.spans
        )

    @pytest.mark.parametrize("ingest_policy", INGEST_POLICIES)
    def test_identity_is_ingest_policy_independent(
        self, s1_setup, ingest_policy
    ):
        """Without bursts no queue ever overflows, so the backpressure
        policy must be unobservable."""
        scenario, config, trained = s1_setup
        sync = run_policy(scenario, "balb", config, trained)
        event = run_policy(
            scenario, "balb",
            PipelineConfig(**{
                **config.__dict__, "runtime": "event",
                "ingest_policy": ingest_policy, "ingest_capacity": 1,
            }),
            trained,
        )
        assert event.frames == sync.frames
        assert _stable_metrics(event) == _stable_metrics(sync)


# -- The burst golden: S1 under the `ingest` chaos preset ------------------

# Exact ingest-ledger counters for the fixture burst run (capacity 2,
# drop-oldest, seed 0): 20 frames x 5 cameras = 100 offered; the seeded
# burst schedule stalls 8 camera-frames, all of which the drop-oldest
# policy sheds on release.
GOLDEN_BURST_COUNTERS = {
    "ingest_offered_total": 100,
    "ingest_admitted_total": 100,
    "ingest_served_total": 92,
    "ingest_dropped_total": 8,
    "ingest_coalesced_total": 0,
    "ingest_stalled_frames_total": 8,
}


def _regular_camera_tree(has_gpu_batch=False):
    steps = [
        ("camera.flow_predict", ()),
        ("camera.policy_select", ()),
        ("camera.new_regions", ()),
        ("camera.slice", ()),
    ]
    if has_gpu_batch:
        steps.append(("gpu.execute", ()))
    steps += [("camera.detect", ()), ("camera.track_refresh", ())]
    return ("camera.regular_frame", tuple(steps))


# Frame 2: camera 3 is inside its burst window — the frame opens with the
# fault and stall spans and only four cameras run the distributed stage.
GOLDEN_STALL_FRAME = (
    (
        "frame",
        (
            ("fault.ingest_burst", ()),
            ("ingest.stall", ()),
            ("sim.advance", ()),
            (
                "distributed_stage",
                tuple([_regular_camera_tree()] * 4),
            ),
        ),
    ),
)

# Frame 3: camera 3's window ends; its backlog releases and drop-oldest
# sheds one stale frame. All five cameras are back; the fourth batches.
GOLDEN_RELEASE_FRAME = (
    (
        "frame",
        (
            ("ingest.drop", ()),
            ("sim.advance", ()),
            (
                "distributed_stage",
                tuple(
                    _regular_camera_tree(has_gpu_batch=(i == 3))
                    for i in range(5)
                ),
            ),
        ),
    ),
)


@pytest.fixture(scope="module")
def burst_run(s1_setup):
    scenario, config, trained = s1_setup
    burst_config = PipelineConfig(**{
        **config.__dict__, "runtime": "event", "faults": "ingest",
        "ingest_capacity": 2,
    })
    result = run_policy(scenario, "balb", burst_config, trained)
    return scenario, burst_config, trained, result


def _frame_subtree(spans, frame_index):
    root = next(
        s
        for s in spans
        if s.name == "frame" and s.tags.get("frame") == frame_index
    )
    ids = {root.span_id}
    out = []
    for s in spans:
        if s.span_id == root.span_id or s.parent_id in ids:
            ids.add(s.span_id)
            out.append(s)
    return out


class TestBurstGolden:
    def test_stall_frame_matches_golden_tree(self, burst_run):
        *_, result = burst_run
        subtree = _frame_subtree(result.spans, frame_index=2)
        assert span_tree_signature(subtree) == GOLDEN_STALL_FRAME

    def test_release_frame_matches_golden_tree(self, burst_run):
        *_, result = burst_run
        subtree = _frame_subtree(result.spans, frame_index=3)
        assert span_tree_signature(subtree) == GOLDEN_RELEASE_FRAME

    def test_ingest_counters_match_golden_ledger(self, burst_run):
        *_, result = burst_run
        counters = {}
        for m in result.metrics:
            if m["kind"] == "counter" and m["name"].startswith("ingest_"):
                name = m["name"]
                counters[name] = counters.get(name, 0) + int(m["value"])
        assert counters == GOLDEN_BURST_COUNTERS

    def test_burst_run_is_deterministic(self, burst_run):
        scenario, burst_config, trained, result = burst_run
        rerun = run_policy(scenario, "balb", burst_config, trained)
        assert rerun.frames == result.frames
        assert span_tree_signature(rerun.spans) == span_tree_signature(
            result.spans
        )

    def test_sync_runtime_refuses_burst_faults(self, s1_setup):
        scenario, config, trained = s1_setup
        bad = PipelineConfig(**{**config.__dict__, "faults": "ingest"})
        with pytest.raises(ValueError, match="event runtime"):
            run_policy(scenario, "balb", bad, trained)
