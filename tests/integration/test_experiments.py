"""Tests of the experiment harnesses (scaled-down runs)."""

import math

import numpy as np
import pytest

from repro.experiments.ablations import (
    ablate_batch_awareness,
    ablate_coverage_ordering,
    jetson_fleet_profiles,
    measure_optimality_gap,
    random_instance,
)
from repro.experiments.fig10_classification import evaluate_classifiers
from repro.experiments.fig11_regression import evaluate_regressors
from repro.experiments.fig2_workload import workload_trace
from repro.experiments.report import format_table
from repro.scenarios.aic21 import get_scenario


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(
            ["a", "bb"], [(1, 2.5), ("xx", 3.14159)], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a"], [(1, 2)])


class TestFig2:
    def test_trace_structure(self):
        trace = workload_trace(
            scenario=get_scenario("S2", seed=0),
            duration_s=30.0,
            sample_interval_s=2.0,
            warmup_s=20.0,
        )
        assert trace.scenario == "S2"
        assert len(trace.sample_times) == 15
        assert set(trace.counts) == {0, 1}
        for series in trace.counts.values():
            assert len(series) == 15

    def test_workload_varies_over_time(self):
        """Figure 2's point: significant temporal variation."""
        trace = workload_trace(
            scenario=get_scenario("S1", seed=0),
            duration_s=80.0,
            sample_interval_s=2.0,
            warmup_s=30.0,
        )
        cvs = trace.coefficient_of_variation()
        assert max(cvs.values()) > 0.1

    def test_relative_swings_computable(self):
        trace = workload_trace(
            scenario=get_scenario("S1", seed=0),
            duration_s=60.0,
            sample_interval_s=2.0,
            warmup_s=30.0,
        )
        cams = sorted(trace.counts)
        swing = trace.relative_workload_swings(cams[0], cams[1])
        assert 0.0 <= swing <= 1.0


class TestFig10And11:
    @pytest.fixture(scope="class")
    def s2_rows(self):
        return (
            evaluate_classifiers("S2", duration_s=60.0, seed=0),
            evaluate_regressors("S2", duration_s=60.0, seed=0),
        )

    def test_all_classifiers_evaluated(self, s2_rows):
        cls_rows, _ = s2_rows
        assert {r.model for r in cls_rows} == {
            "knn", "svm", "logistic", "decision-tree"
        }
        for row in cls_rows:
            assert 0.0 <= row.precision <= 1.0
            assert 0.0 <= row.recall <= 1.0

    def test_knn_classifier_competitive(self, s2_rows):
        """KNN precision within a small margin of the best baseline."""
        cls_rows, _ = s2_rows
        by_model = {r.model: r for r in cls_rows}
        best = max(r.precision for r in cls_rows)
        assert by_model["knn"].precision >= best - 0.05

    def test_all_regressors_evaluated(self, s2_rows):
        _, reg_rows = s2_rows
        assert {r.model for r in reg_rows} == {
            "knn", "homography", "linear", "ransac"
        }
        for row in reg_rows:
            assert row.mae_px > 0 or math.isnan(row.mae_px)

    def test_knn_regressor_reasonable(self, s2_rows):
        _, reg_rows = s2_rows
        knn = next(r for r in reg_rows if r.model == "knn")
        assert knn.mae_px < 60.0  # pixels, on 1280-wide frames


class TestAblations:
    def test_batch_awareness_helps(self):
        result = ablate_batch_awareness(n_trials=10, n_objects=25, seed=0)
        assert result.degradation >= 1.0

    def test_coverage_ordering_helps(self):
        result = ablate_coverage_ordering(n_trials=10, n_objects=25, seed=0)
        assert result.degradation >= 0.98  # never materially harmful

    def test_optimality_gap_bounded(self):
        result = measure_optimality_gap(n_trials=6, n_objects=8, seed=0)
        assert 1.0 <= result.mean_ratio < 1.5
        assert result.worst_ratio < 2.0

    def test_random_instance_valid(self):
        profiles = jetson_fleet_profiles(0)
        rng = np.random.default_rng(0)
        inst = random_instance(profiles, 15, rng)
        assert len(inst.objects) == 15
        for obj in inst.objects:
            assert obj.coverage  # non-empty
