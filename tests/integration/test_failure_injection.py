"""Failure injection: the framework under degraded conditions.

The paper's system must stay useful when components misbehave. These
tests inject failures into the substrate — a blinded camera, heavy
detector noise, severe flow drift, a degenerate association model — and
assert the pipeline degrades gracefully instead of crashing or silently
corrupting its metrics.
"""


from repro.association.pairwise import PairwiseAssociator
from repro.association.training import AssociationDataset
from repro.cameras.camera import Camera, CameraIntrinsics, CameraPose
from repro.devices.profiler import profile_device
from repro.devices.profiles import JETSON_TX2, latency_model_for
from repro.geometry.box import BBox
from repro.runtime.camera_node import CameraNode
from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
from repro.runtime.policies import IndependentPolicy
from repro.runtime.scheduler_node import CentralScheduler
from repro.scenarios.aic21 import scenario_s2
from repro.vision.detector import DetectorErrorModel
from repro.world.entities import ObjectClass, WorldObject


def small_config(**kwargs):
    defaults = dict(
        policy="balb",
        horizon=5,
        n_horizons=6,
        warmup_s=15.0,
        train_duration_s=40.0,
        seed=0,
    )
    defaults.update(kwargs)
    return PipelineConfig(**defaults)


class TestDegradedDetector:
    def make_node(self, errors):
        camera = Camera(
            camera_id=0,
            pose=CameraPose(x=0, y=0, z=6.0, yaw=0.0, pitch_down=0.3),
            intrinsics=CameraIntrinsics(
                focal_px=950, image_width=1280, image_height=704
            ),
            max_range=80.0,
        )
        model = latency_model_for(JETSON_TX2)
        return CameraNode(
            camera, model, profile_device(model, "tx2"),
            detector_errors=errors, gpu_jitter=0.0,
        )

    def test_blind_detector_yields_empty_tracks_not_crash(self):
        node = self.make_node(
            DetectorErrorModel(base_miss_prob=1.0, false_positive_rate=0.0)
        )
        obj = WorldObject.of_class(0, ObjectClass.CAR, 30, 0, 0.0, 10.0)
        outcome = node.process_key_frame([obj])
        assert outcome.detections == []
        assert node.tracks == {}
        regular = node.process_regular_frame([obj], IndependentPolicy())
        assert regular.inference_ms >= 0.0

    def test_false_positive_storm_bounded(self):
        node = self.make_node(
            DetectorErrorModel(base_miss_prob=0.0, false_positive_rate=10.0)
        )
        outcome = node.process_key_frame([])
        # Ghost tracks open but the pipeline stays consistent.
        assert len(node.tracks) == len(outcome.detections)
        for _ in range(6):
            node.process_regular_frame([], IndependentPolicy())
        # Ghosts never get re-detected, so they die out.
        assert len(node.tracks) < len(outcome.detections) + 2


class TestDegradedFlow:
    def test_severe_drift_recovers_at_key_frames(self):
        scenario = scenario_s2(seed=0)
        config = small_config()
        trained = train_models(scenario, config)
        # Severe drift: recall degrades but stays well-defined; the run
        # completes all frames.
        result = run_policy(scenario, "balb", config, trained)
        assert result.n_frames == config.horizon * config.n_horizons
        assert 0.0 <= result.object_recall() <= 1.0


class TestDegradedAssociation:
    def degenerate_associator(self):
        """An associator fitted on one pair with constant-negative labels:
        it never merges anything."""
        ds = AssociationDataset()
        pair = ds.pair(0, 1)
        back = ds.pair(1, 0)
        for i in range(20):
            box = BBox.from_xywh(100 + 10 * i, 100, 40, 30)
            pair.add(box, None)
            back.add(box, None)
        return PairwiseAssociator().fit(ds)

    def test_scheduler_with_never_merging_models(self):
        from repro.devices.profiler import DeviceProfile

        profiles = {
            0: DeviceProfile(
                device_name="a", size_set=(64,), t_full=100.0,
                batch_latency_ms={64: 5.0}, batch_limits={64: 4},
            ),
            1: DeviceProfile(
                device_name="b", size_set=(64,), t_full=100.0,
                batch_latency_ms={64: 5.0}, batch_limits={64: 4},
            ),
        }
        scheduler = CentralScheduler(
            profiles=profiles,
            associator=self.degenerate_associator(),
            frame_sizes={0: (1280, 704), 1: (1280, 704)},
            typical_box_sizes={0: 50.0, 1: 50.0},
            size_set=(64,),
            mode="balb",
        )
        reports = {
            0: [(1, BBox.from_xywh(300, 300, 50, 35), 7)],
            1: [(2, BBox.from_xywh(500, 300, 50, 35), 7)],
        }
        decision = scheduler.schedule(reports)
        # Same physical object tracked twice — redundant but safe.
        assert decision.n_global_objects == 2
        total = sum(len(v) for v in decision.assigned.values())
        assert total == 2


class TestNetworkDegradation:
    def test_slow_network_inflates_central_overhead_only(self):

        scenario = scenario_s2(seed=0)
        config = small_config()
        trained = train_models(scenario, config)
        fast = run_policy(scenario, "balb", config, trained)
        # The network cost lands in the 'central' overhead bucket, never in
        # the YOLO-equivalent inference metric.
        assert fast.overhead_breakdown()["central"] < 10.0
        assert fast.mean_slowest_latency() < 200.0


class TestCameraOutage:
    def test_camera_with_empty_reports(self):
        """A camera that never detects anything (hardware fault) must not
        break central scheduling for the others."""
        scenario = scenario_s2(seed=0)
        config = small_config()
        trained = train_models(scenario, config)
        pipeline_result = run_policy(scenario, "balb", config, trained)
        # Baseline sanity before the outage variant below.
        assert pipeline_result.n_frames > 0

        from repro.devices.profiler import DeviceProfile

        profiles = {
            0: trained.profiles[0],
            1: trained.profiles[1],
        }
        scheduler = CentralScheduler(
            profiles=profiles,
            associator=trained.associator,
            frame_sizes={0: (1280, 704), 1: (1280, 704)},
            typical_box_sizes=trained.typical_box_sizes,
            size_set=trained.profiles[0].size_set,
            mode="balb",
        )
        decision = scheduler.schedule(
            {0: [(1, BBox.from_xywh(600, 350, 60, 40), 3)], 1: []}
        )
        assert decision.assigned[0] == [1]
        assert decision.assigned[1] == []
