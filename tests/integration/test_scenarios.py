"""Integration tests of the scenario library."""

import pytest

from repro.scenarios.aic21 import (
    ALL_SCENARIOS,
    get_scenario,
    scenario_s1,
    scenario_s2,
    scenario_s3,
)


class TestScenarioCatalogue:
    def test_lookup(self):
        assert get_scenario("s1").name == "S1"
        assert get_scenario("S3").name == "S3"
        with pytest.raises(KeyError):
            get_scenario("S9")

    def test_table1_hardware_configuration(self):
        """Table I: S1 = 2 Xavier + 2 TX2 + 1 Nano; S2 = Xavier + Nano;
        S3 = Xavier + TX2 + Nano."""
        s1 = scenario_s1()
        assert len(s1.cameras) == 5
        names = sorted(d.name for d in s1.devices)
        assert names.count("jetson-agx-xavier") == 2
        assert names.count("jetson-tx2") == 2
        assert names.count("jetson-nano") == 1

        s2 = scenario_s2()
        assert len(s2.cameras) == 2
        assert {d.name for d in s2.devices} == {
            "jetson-agx-xavier", "jetson-nano"
        }

        s3 = scenario_s3()
        assert len(s3.cameras) == 3
        assert {d.name for d in s3.devices} == {
            "jetson-agx-xavier", "jetson-tx2", "jetson-nano"
        }

    def test_ten_fps(self):
        for factory in ALL_SCENARIOS.values():
            assert factory().fps == 10.0

    def test_s1_has_fisheye_camera(self):
        s1 = scenario_s1()
        heights = {c.intrinsics.image_height for c in s1.cameras}
        assert 960 in heights and 704 in heights


class TestScenarioDynamics:
    def test_build_is_fresh_each_time(self):
        scenario = scenario_s2(seed=1)
        w1, _ = scenario.build()
        w2, _ = scenario.build()
        w1.run(10.0, 0.1)
        assert w2.time == 0.0

    def test_same_seed_same_world(self):
        scenario = scenario_s1(seed=5)
        w1, _ = scenario.build()
        w2, _ = scenario.build()
        w1.run(15.0, 0.1)
        w2.run(15.0, 0.1)
        assert [o.object_id for o in w1.objects] == [
            o.object_id for o in w2.objects
        ]

    def test_traffic_flows_in_all_scenarios(self):
        for name, factory in ALL_SCENARIOS.items():
            scenario = factory(seed=3)
            world, rig = scenario.build()
            world.run(60.0, 0.1)
            visible = 0
            for _ in range(30):  # S2 is sparse: average over 30 s
                world.run(1.0, 0.1)
                visible += sum(rig.visible_counts(world.objects).values())
            assert visible > 0, f"{name} produced no visible traffic"

    def test_multi_view_overlap_exists(self):
        """Every scenario must have some co-visible objects over time —
        the premise of multi-view scheduling."""
        for name, factory in ALL_SCENARIOS.items():
            scenario = factory(seed=11)
            world, rig = scenario.build()
            world.run(60.0, 0.1)
            covisible = 0
            for _ in range(40):
                world.run(1.0, 0.1)
                covisible += sum(
                    1
                    for o in world.objects
                    if len(rig.coverage_set(o)) >= 2
                )
            assert covisible > 0, f"{name} has no view overlap"

    def test_s1_busier_than_s2(self):
        def mean_visible(factory):
            scenario = factory(seed=9)
            world, rig = scenario.build()
            world.run(60.0, 0.1)
            total = 0
            for _ in range(30):
                world.run(1.0, 0.1)
                total += sum(rig.visible_counts(world.objects).values())
            return total / 30

        assert mean_visible(scenario_s1) > mean_visible(scenario_s2)

    def test_device_map_matches_cameras(self):
        scenario = scenario_s3()
        device_map = scenario.device_map()
        assert set(device_map) == {0, 1, 2}
