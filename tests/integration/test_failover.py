"""End-to-end scheduler failover: takeover timing, metrics, degradation."""

import pytest

from repro.runtime.pipeline import Pipeline, PipelineConfig, train_models
from repro.scenarios.aic21 import scenario_s1


def small_config(**kwargs):
    defaults = dict(
        policy="balb",
        horizon=5,
        n_horizons=8,
        warmup_s=15.0,
        train_duration_s=40.0,
        seed=0,
    )
    defaults.update(kwargs)
    return PipelineConfig(**defaults)


@pytest.fixture(scope="module")
def shared():
    scenario = scenario_s1()
    trained = train_models(scenario, small_config())
    return scenario, trained


def counter_sum(result, name):
    return int(sum(
        m["value"] for m in result.metrics
        if m["kind"] == "counter" and m["name"] == name
    ))


def recovery_histogram(result):
    return next(
        (m for m in result.metrics
         if m["kind"] == "histogram" and m["name"] == "failover_recovery_ms"),
        None,
    )


class TestFailover:
    def test_takeover_within_one_heartbeat_interval(self, shared):
        scenario, trained = shared
        config = small_config(faults="sched_crash:at=12,for=10", trace=True)
        result = Pipeline(scenario, config, trained=trained).run()
        assert result.n_frames == 40  # the run survives the outage
        takeover = next(
            s for s in result.spans if s.name == "failover.takeover"
        )
        crash_frame = 12
        assert takeover.tags["frame"] - crash_frame <= (
            config.failover_heartbeat_frames
        )
        assert counter_sum(result, "failover_takeovers_total") == 1
        assert counter_sum(result, "failover_handbacks_total") == 1
        hist = recovery_histogram(result)
        assert hist is not None and hist["count"] == 1
        # recovery = detection frames + modeled takeover cost, well under
        # two heartbeat intervals of wall time at 10 fps
        assert 0 < hist["mean"] < 2 * config.failover_heartbeat_frames * 100 + 100

    def test_replication_rides_assignment_downloads(self, shared):
        scenario, trained = shared
        config = small_config(faults="sched_crash:at=12,for=10", trace=True)
        result = Pipeline(scenario, config, trained=trained).run()
        replications = [
            s for s in result.spans if s.name == "failover.replicate"
        ]
        assert replications
        assert all(s.tags["bytes"] > 0 for s in replications)
        assert counter_sum(result, "failover_replications_total") == len(
            [s for s in replications if s.tags["delivered"]]
        )
        takeover = next(
            s for s in result.spans if s.name == "failover.takeover"
        )
        # the standby restored from a replica taken before the crash
        assert 0 <= takeover.tags["replica_frame"] < 12

    def test_long_heartbeat_skips_key_frames(self, shared):
        scenario, trained = shared
        config = small_config(
            faults="sched_crash:at=8,for=12", failover_heartbeat_frames=7
        )
        result = Pipeline(scenario, config, trained=trained).run()
        assert counter_sum(result, "skipped_key_frames_total") >= 1
        keys = [r.frame_index for r in result.frames if r.is_key_frame]
        assert 10 not in keys  # the scheduled key inside the outage

    def test_failover_cost_charged_to_transition_frames(self, shared):
        scenario, trained = shared
        config = small_config(faults="sched_crash:at=13,for=10")
        result = Pipeline(scenario, config, trained=trained).run()
        charged = [
            r for r in result.frames if "failover" in r.overheads_ms
        ]
        assert len(charged) == 2  # one takeover + one handback
        assert all(r.overheads_ms["failover"] > 0 for r in charged)

    def test_recovery_grows_with_heartbeat_interval(self, shared):
        scenario, trained = shared
        means = []
        for hb in (2, 10):
            config = small_config(
                faults="sched_crash:at=12,for=15",
                failover_heartbeat_frames=hb,
            )
            result = Pipeline(scenario, config, trained=trained).run()
            means.append(recovery_histogram(result)["mean"])
        assert means[0] < means[1]

    def test_run_completes_under_stochastic_scheduler_chaos(self, shared):
        scenario, trained = shared
        config = small_config(faults="scheduler", seed=1)
        result = Pipeline(scenario, config, trained=trained).run()
        assert result.n_frames == 40
        assert result.object_recall() > 0.5

    def test_sp_policy_survives_scheduler_outage(self, shared):
        scenario, trained = shared
        config = small_config(
            policy="sp", faults="sched_crash:at=12,for=10"
        )
        result = Pipeline(scenario, config, trained=trained).run()
        assert result.n_frames == 40
        assert counter_sum(result, "failover_takeovers_total") == 1

    def test_scheduler_faults_do_not_disturb_clean_policies(self, shared):
        # balb-ind has no central scheduler: a scheduler outage is a no-op
        scenario, trained = shared
        clean = Pipeline(
            scenario, small_config(policy="balb-ind"), trained=trained
        ).run()
        faulted = Pipeline(
            scenario,
            small_config(policy="balb-ind", faults="sched_crash:at=5,for=10"),
            trained=trained,
        ).run()
        assert clean.object_recall() == faulted.object_recall()
        assert counter_sum(faulted, "failover_takeovers_total") == 0

    def test_identical_to_pre_failover_run_without_scheduler_faults(
        self, shared
    ):
        # Camera-only fault plans must not arm the failover machinery:
        # the run is bit-identical with or without scheduler-fault support
        scenario, trained = shared
        spec = "crash:cam=1,at=12,for=10"
        a = Pipeline(
            scenario, small_config(faults=spec), trained=trained
        ).run()
        b = Pipeline(
            scenario, small_config(faults=spec), trained=trained
        ).run()
        assert [r.__dict__ for r in a.frames] == [
            r.__dict__ for r in b.frames
        ]
        assert counter_sum(a, "scheduler_down_frames_total") == 0
