"""Pipeline-level tests of the occlusion + redundancy extensions."""

import pytest

from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
from repro.scenarios.aic21 import get_scenario


def config(**kwargs):
    defaults = dict(
        policy="balb",
        horizon=10,
        n_horizons=10,
        warmup_s=20.0,
        train_duration_s=60.0,
        seed=0,
    )
    defaults.update(kwargs)
    return PipelineConfig(**defaults)


@pytest.fixture(scope="module")
def s3_trained():
    scenario = get_scenario("S3", seed=0)
    return scenario, train_models(scenario, config())


class TestOcclusionFlag:
    def test_occlusion_reduces_or_keeps_recall(self, s3_trained):
        scenario, trained = s3_trained
        clear = run_policy(scenario, "balb", config(), trained)
        occluded = run_policy(
            scenario, "balb", config(occlusion=True), trained
        )
        # Occlusion can only make detection harder.
        assert occluded.object_recall() <= clear.object_recall() + 0.03

    def test_occlusion_run_completes_all_frames(self, s3_trained):
        scenario, trained = s3_trained
        result = run_policy(scenario, "balb", config(occlusion=True), trained)
        assert result.n_frames == 100


class TestRedundancyFlag:
    def test_invalid_redundancy_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(redundancy=0)

    def test_redundancy_runs_and_costs_latency(self, s3_trained):
        scenario, trained = s3_trained
        k1 = run_policy(scenario, "balb", config(occlusion=True), trained)
        k2 = run_policy(
            scenario, "balb", config(occlusion=True, redundancy=2), trained
        )
        # More replicas -> at least as much inspection work.
        assert (
            k2.mean_slowest_latency() >= k1.mean_slowest_latency() * 0.9
        )
        assert 0.0 <= k2.object_recall() <= 1.0

    def test_redundancy_without_occlusion_not_worse_recall(self, s3_trained):
        scenario, trained = s3_trained
        k1 = run_policy(scenario, "balb", config(), trained)
        k2 = run_policy(scenario, "balb", config(redundancy=2), trained)
        assert k2.object_recall() >= k1.object_recall() - 0.05
