"""Crash-consistent checkpoint/resume: atomicity, digests, bit-identity."""

import os
import pickle

import pytest

from repro.checkpoint import (
    MAGIC,
    CheckpointError,
    RunCheckpoint,
    load_checkpoint,
    resume_run,
    save_checkpoint,
)
from repro.runtime.pipeline import Pipeline, PipelineConfig, train_models
from repro.scenarios.aic21 import scenario_s1


def small_config(**kwargs):
    defaults = dict(
        policy="balb",
        horizon=5,
        n_horizons=8,
        warmup_s=15.0,
        train_duration_s=40.0,
        seed=0,
    )
    defaults.update(kwargs)
    return PipelineConfig(**defaults)


@pytest.fixture(scope="module")
def shared():
    scenario = scenario_s1()
    trained = train_models(scenario, small_config())
    return scenario, trained


def strip_wall(metrics):
    """Everything in the export except host-wall-clock observations."""
    return [m for m in metrics if m["name"] != "frame_wall_ms"]


def assert_bit_identical(full, resumed):
    assert len(full.frames) == len(resumed.frames)
    for a, b in zip(full.frames, resumed.frames):
        assert a.__dict__ == b.__dict__
    assert strip_wall(full.metrics) == strip_wall(resumed.metrics)
    assert full.object_recall() == resumed.object_recall()
    assert full.mean_slowest_latency() == resumed.mean_slowest_latency()


class TestCheckpointFile:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "a.ckpt")
        ckpt = RunCheckpoint(scenario="s", config="c", trained="t",
                             state="state")
        save_checkpoint(path, ckpt)
        loaded = load_checkpoint(path)
        assert loaded.state == "state"

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "a.ckpt")
        with open(path, "wb") as fh:
            fh.write(b"not a checkpoint")
        with pytest.raises(CheckpointError, match="bad magic"):
            load_checkpoint(path)

    def test_truncated_payload_fails_digest(self, tmp_path):
        path = str(tmp_path / "a.ckpt")
        save_checkpoint(path, RunCheckpoint("s", "c", "t", "state"))
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[:-3])
        with pytest.raises(CheckpointError, match="digest mismatch"):
            load_checkpoint(path)

    def test_flipped_byte_fails_digest(self, tmp_path):
        path = str(tmp_path / "a.ckpt")
        save_checkpoint(path, RunCheckpoint("s", "c", "t", "state"))
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        with pytest.raises(CheckpointError, match="digest mismatch"):
            load_checkpoint(path)

    def test_wrong_payload_type(self, tmp_path):
        import hashlib

        path = str(tmp_path / "a.ckpt")
        payload = pickle.dumps({"not": "a RunCheckpoint"})
        digest = hashlib.sha256(payload).hexdigest().encode()
        with open(path, "wb") as fh:
            fh.write(MAGIC + digest + b"\n" + payload)
        with pytest.raises(CheckpointError, match="unexpected payload"):
            load_checkpoint(path)

    def test_write_is_atomic_no_temp_left_behind(self, tmp_path):
        path = str(tmp_path / "a.ckpt")
        save_checkpoint(path, RunCheckpoint("s", "c", "t", "state"))
        save_checkpoint(path, RunCheckpoint("s", "c", "t", "state2"))
        assert os.listdir(tmp_path) == ["a.ckpt"]
        assert load_checkpoint(path).state == "state2"


class TestConfigValidation:
    def test_checkpoint_knobs_need_path(self):
        with pytest.raises(ValueError):
            small_config(checkpoint_every=5)
        with pytest.raises(ValueError):
            small_config(stop_after_frames=5)
        with pytest.raises(ValueError):
            small_config(checkpoint_path="x", stop_after_frames=0)
        small_config(checkpoint_path="x", checkpoint_every=5)  # fine


class TestResumeBitIdentity:
    def test_resume_matches_uninterrupted_run(self, shared, tmp_path):
        scenario, trained = shared
        full = Pipeline(scenario, small_config(), trained=trained).run()

        path = str(tmp_path / "run.ckpt")
        cfg = small_config(checkpoint_path=path, stop_after_frames=17)
        partial = Pipeline(scenario, cfg, trained=trained).run()
        assert partial.n_frames == 17
        assert os.path.exists(path)

        resumed = resume_run(path)
        assert_bit_identical(full, resumed)

    def test_resume_mid_fault_window(self, shared, tmp_path):
        # Interrupt inside a scheduler outage, before the takeover fires:
        # the lease/fault state must survive the pickle roundtrip exactly.
        scenario, trained = shared
        spec = (
            "sched_crash:at=13,for=10;crash:cam=2,at=20,for=6;"
            "loss:p=0.2,at=5,for=25"
        )
        full = Pipeline(
            scenario, small_config(faults=spec, seed=3), trained=trained
        ).run()
        path = str(tmp_path / "run.ckpt")
        cfg = small_config(
            faults=spec, seed=3, checkpoint_path=path, stop_after_frames=14
        )
        Pipeline(scenario, cfg, trained=trained).run()
        resumed = resume_run(path)
        assert_bit_identical(full, resumed)

    def test_periodic_checkpoints_do_not_perturb_the_run(
        self, shared, tmp_path
    ):
        scenario, trained = shared
        full = Pipeline(scenario, small_config(), trained=trained).run()
        path = str(tmp_path / "run.ckpt")
        cfg = small_config(checkpoint_path=path, checkpoint_every=10)
        checkpointed = Pipeline(scenario, cfg, trained=trained).run()
        assert_bit_identical(full, checkpointed)
        # the final periodic snapshot (frame 40) is resumable as a no-op
        ckpt = load_checkpoint(path)
        assert ckpt.next_frame == 40
        tail = resume_run(path)
        assert_bit_identical(full, tail)

    def test_resume_at_different_cut_points_all_agree(
        self, shared, tmp_path
    ):
        scenario, trained = shared
        full = Pipeline(scenario, small_config(seed=2), trained=trained).run()
        for stop in (1, 20, 39):
            path = str(tmp_path / f"run{stop}.ckpt")
            cfg = small_config(
                seed=2, checkpoint_path=path, stop_after_frames=stop
            )
            Pipeline(scenario, cfg, trained=trained).run()
            assert_bit_identical(full, resume_run(path))
