"""Tests for the command-line interface."""

import re

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "S1"
        assert args.policy == "balb"
        assert args.redundancy == 1

    def test_compare_policies(self):
        args = build_parser().parse_args(
            ["compare", "--policies", "full", "balb"]
        )
        assert args.policies == ["full", "balb"]

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "magic"])

    def test_experiments_options(self):
        args = build_parser().parse_args(
            ["experiments", "--only", "FIG13", "--out", "x.txt"]
        )
        assert args.only == "FIG13"
        assert args.out == "x.txt"

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "S1" in out and "S2" in out and "S3" in out
        assert "nano" in out

    def test_run_command_small(self, capsys):
        code = main(
            [
                "run",
                "--scenario", "S2",
                "--policy", "balb-ind",
                "--horizon", "5",
                "--horizons", "3",
                "--train-duration", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slowest-cam ms" in out
        assert "jetson-nano" in out

    def test_unknown_experiment_errors(self, capsys):
        code = main(["experiments", "--only", "FIG99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_written_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "ablations.txt"
        code = main(
            ["experiments", "--only", "ABLATIONS", "--out", str(out_file)]
        )
        assert code == 0
        content = out_file.read_text()
        assert "batch-awareness" in content


RUN_SMALL = [
    "run",
    "--scenario", "S1",
    "--horizon", "5",
    "--horizons", "4",
    "--train-duration", "20",
]


class TestFaultSpecErrors:
    def test_bad_faults_spec_names_offending_clause(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--faults", "crash:cam=1,at=banana"])
        assert "at must be an integer" in str(exc.value)
        assert "crash:cam=1,at=banana" in str(exc.value)

    def test_unknown_fault_kind_lists_options(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--faults", "meteor:at=5"])
        assert "unknown fault kind 'meteor'" in str(exc.value)
        assert "sched_crash" in str(exc.value)

    def test_scheduler_clause_with_camera_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--faults", "sched_crash:cam=1,at=5"])
        assert "takes no cam=" in str(exc.value)

    def test_faults_and_chaos_mutually_exclusive(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--faults", "loss:p=0.1", "--chaos", "heavy"])
        assert "mutually exclusive" in str(exc.value)

    def test_unknown_chaos_preset_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--chaos", "mayhem"])


class TestCheckpointCli:
    def test_checkpoint_knobs_require_checkpoint(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--stop-after", "5"])
        assert "require --checkpoint" in str(exc.value)

    def test_resume_rejects_run_options(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--resume", "x.ckpt", "--faults", "loss:p=0.1"])
        assert "cannot be combined" in str(exc.value)

    def test_resume_missing_checkpoint_is_clean_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--resume", "/no/such/file.ckpt"])
        assert "cannot read checkpoint" in str(exc.value)

    def test_interrupt_then_resume_reproduces_stdout(self, tmp_path, capsys):
        assert main(RUN_SMALL) == 0
        full_out = capsys.readouterr().out

        ckpt = str(tmp_path / "run.ckpt")
        args = RUN_SMALL + ["--checkpoint", ckpt, "--stop-after", "9"]
        assert main(args) == 0
        interrupted_out = capsys.readouterr().out
        assert "interrupted after 9/20 frames" in interrupted_out
        assert "slowest-cam ms" not in interrupted_out  # no partial tables

        assert main(["run", "--resume", ckpt]) == 0
        resumed_out = capsys.readouterr().out
        assert resumed_out == full_out  # byte-identical stdout

    def test_corrupted_checkpoint_refused(self, tmp_path, capsys):
        ckpt = str(tmp_path / "run.ckpt")
        args = RUN_SMALL + ["--checkpoint", ckpt, "--stop-after", "5"]
        assert main(args) == 0
        capsys.readouterr()
        blob = bytearray(open(ckpt, "rb").read())
        blob[-1] ^= 0xFF
        with open(ckpt, "wb") as fh:
            fh.write(bytes(blob))
        with pytest.raises(SystemExit) as exc:
            main(["run", "--resume", ckpt])
        assert "digest mismatch" in str(exc.value)


class TestEventRuntimeCli:
    def test_runtime_flag_defaults_to_sync(self):
        args = build_parser().parse_args(["run"])
        assert args.runtime == "sync"
        assert args.ingest_capacity == 4
        assert args.ingest_policy == "drop-oldest"
        assert args.serve_subscribers == 0
        assert args.serve_every == 1

    def test_unknown_runtime_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--runtime", "threads"])

    def test_unknown_ingest_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--ingest-policy", "teleport"])

    def test_sync_runtime_refuses_burst_faults(self):
        with pytest.raises(SystemExit) as exc:
            main(RUN_SMALL + ["--faults", "burst:cam=1,at=5,for=3"])
        assert "--runtime event" in str(exc.value)

    def test_sync_runtime_refuses_ingest_chaos_preset(self):
        with pytest.raises(SystemExit) as exc:
            main(RUN_SMALL + ["--chaos", "ingest"])
        assert "--runtime event" in str(exc.value)

    def test_event_runtime_matches_sync_stdout(self, capsys):
        """Acceptance criterion, end to end: identical bytes out."""
        assert main(RUN_SMALL) == 0
        sync_out = capsys.readouterr().out
        assert main(RUN_SMALL + ["--runtime", "event"]) == 0
        assert capsys.readouterr().out == sync_out

    def test_event_run_prints_ingest_summary_under_bursts(self, capsys):
        args = RUN_SMALL + [
            "--runtime", "event",
            "--chaos", "ingest",
            "--ingest-capacity", "2",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "fault summary" in out
        assert "ingest frames offered" in out
        assert "ingest frames dropped" in out
        assert "ingest stalls" in out

    def test_burst_free_event_run_prints_no_ingest_rows(self, capsys):
        assert main(RUN_SMALL + ["--runtime", "event"]) == 0
        assert "ingest frames offered" not in capsys.readouterr().out

    def test_event_runtime_cannot_checkpoint(self, tmp_path):
        args = RUN_SMALL + [
            "--runtime", "event", "--checkpoint", str(tmp_path / "x.ckpt"),
        ]
        with pytest.raises(SystemExit) as exc:
            main(args)
        assert "checkpoint" in str(exc.value)

    def test_resume_rejects_event_runtime(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--resume", "x.ckpt", "--runtime", "event"])
        assert "cannot be combined" in str(exc.value)

    def test_serving_subscribers_run(self, capsys):
        args = RUN_SMALL + [
            "--runtime", "event", "--serve-subscribers", "100",
            "--serve-every", "2",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "slowest-cam ms" in out
        assert "serving summary" in out
        assert re.search(r"subscriber requests +\d+", out)
        assert re.search(r"hit rate +[01]\.\d+", out)

    def test_no_serving_summary_without_subscribers(self, capsys):
        assert main(RUN_SMALL + ["--runtime", "event"]) == 0
        assert "serving summary" not in capsys.readouterr().out


class TestFaultSummaries:
    def test_run_prints_failover_summary(self, capsys):
        args = RUN_SMALL + ["--faults", "sched_crash:at=6,for=8"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "fault summary" in out
        assert "failover takeovers" in out
        assert "mean recovery ms" in out

    def test_compare_prints_fault_summary_per_policy(self, capsys):
        args = [
            "compare",
            "--scenario", "S1",
            "--horizon", "5",
            "--horizons", "3",
            "--train-duration", "20",
            "--policies", "balb", "balb-ind",
            "--faults", "crash:cam=1,at=4,for=5",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "fault summary (balb)" in out
        assert "fault summary (balb-ind)" in out

    def test_compare_without_faults_prints_no_summary(self, capsys):
        args = [
            "compare",
            "--scenario", "S1",
            "--horizon", "5",
            "--horizons", "3",
            "--train-duration", "20",
            "--policies", "balb-ind",
        ]
        assert main(args) == 0
        assert "fault summary" not in capsys.readouterr().out
