"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "S1"
        assert args.policy == "balb"
        assert args.redundancy == 1

    def test_compare_policies(self):
        args = build_parser().parse_args(
            ["compare", "--policies", "full", "balb"]
        )
        assert args.policies == ["full", "balb"]

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "magic"])

    def test_experiments_options(self):
        args = build_parser().parse_args(
            ["experiments", "--only", "FIG13", "--out", "x.txt"]
        )
        assert args.only == "FIG13"
        assert args.out == "x.txt"

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "S1" in out and "S2" in out and "S3" in out
        assert "nano" in out

    def test_run_command_small(self, capsys):
        code = main(
            [
                "run",
                "--scenario", "S2",
                "--policy", "balb-ind",
                "--horizon", "5",
                "--horizons", "3",
                "--train-duration", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slowest-cam ms" in out
        assert "jetson-nano" in out

    def test_unknown_experiment_errors(self, capsys):
        code = main(["experiments", "--only", "FIG99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_written_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "ablations.txt"
        code = main(
            ["experiments", "--only", "ABLATIONS", "--out", str(out_file)]
        )
        assert code == 0
        content = out_file.read_text()
        assert "batch-awareness" in content
