"""The chaos-soak harness: shrinking, report format, end-to-end verdicts."""

import pytest

from repro.experiments.soak import (
    EpisodeOutcome,
    SoakResult,
    _episode_seed,
    _shrink,
    format_soak_report,
    run_soak,
)
from repro.faults.schedule import FaultEvent, FaultKind


class TestShrink:
    def test_shrinks_to_the_single_culprit(self):
        events = list(range(12))
        violates = lambda subset: 7 in subset  # noqa: E731
        shrunk, runs = _shrink(events, violates, budget=32)
        assert shrunk == (7,)
        assert 0 < runs <= 32

    def test_keeps_interacting_pairs_together(self):
        events = list(range(8))
        violates = lambda s: 1 in s and 6 in s  # noqa: E731
        shrunk, _ = _shrink(events, violates, budget=32)
        assert set(shrunk) == {1, 6}

    def test_budget_bounds_the_number_of_runs(self):
        events = list(range(64))
        calls = []
        def violates(subset):
            calls.append(1)
            return 63 in subset
        _shrink(events, violates, budget=5)
        assert len(calls) <= 5

    def test_irreducible_schedule_survives(self):
        shrunk, _ = _shrink([1, 2], lambda s: set(s) == {1, 2}, budget=16)
        assert shrunk == (1, 2)


class TestReportFormat:
    def outcome(self, **kwargs):
        defaults = dict(index=0, fault_seed=0, n_events=3)
        defaults.update(kwargs)
        return EpisodeOutcome(**defaults)

    def result(self, episodes):
        return SoakResult(
            scenario="S1", preset="wire", policy="balb", n_frames=30,
            base_seed=0, fencing=True, episodes=tuple(episodes),
        )

    def test_clean_soak_reports_pass(self):
        report = format_soak_report(self.result([self.outcome()]))
        assert "verdict: PASS" in report
        assert "episodes passed: 1/1" in report
        assert "VIOLATION" not in report

    def test_violating_episode_lists_the_shrunk_schedule(self):
        bad = self.outcome(
            index=1,
            violation="R1 split-brain at frame 10: ...",
            shrunk_events=(
                FaultEvent(
                    FaultKind.SCHEDULER_PARTITION, 9, duration=3,
                    camera_id=1,
                ),
            ),
            shrink_runs=4,
        )
        report = format_soak_report(self.result([self.outcome(), bad]))
        assert "verdict: FAIL" in report
        assert "episodes passed: 1/2" in report
        assert "episode 1 violation: R1 split-brain" in report
        assert "shrunk schedule (1/3 events, 4 shrink runs)" in report
        assert "scheduler_partition cam=1 at=9 for=3" in report

    def test_report_is_pure_text_of_its_inputs(self):
        result = self.result([self.outcome()])
        assert format_soak_report(result) == format_soak_report(result)

    def test_episode_seeds_are_decorrelated_and_stable(self):
        seeds = [_episode_seed(0, i) for i in range(5)]
        assert len(set(seeds)) == 5
        assert seeds == [_episode_seed(0, i) for i in range(5)]
        assert _episode_seed(1, 0) != _episode_seed(0, 0)


class TestRunSoak:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="episodes"):
            run_soak(episodes=0)
        with pytest.raises(ValueError, match="preset"):
            run_soak(episodes=1, preset="bogus")

    @pytest.mark.slow
    def test_fenced_episode_passes(self):
        result = run_soak(episodes=1, seed=0)
        assert result.ok
        assert result.episodes[0].n_events > 0
        assert "verdict: PASS" in format_soak_report(result)

    @pytest.mark.slow
    def test_legacy_episode_violates_and_shrinks(self):
        # Episode 1 of seed 0 draws a scheduler partition; without
        # fencing the invariant monitor catches the split-brain and the
        # shrinker reduces the schedule to a replayable core.
        result = run_soak(episodes=2, seed=0, fencing=False)
        assert not result.ok
        bad = result.episodes[1]
        assert bad.violation is not None and "R1" in bad.violation
        assert 0 < len(bad.shrunk_events) <= bad.n_events
        kinds = {e.kind for e in bad.shrunk_events}
        assert FaultKind.SCHEDULER_PARTITION in kinds
