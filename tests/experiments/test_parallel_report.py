"""Parallel report harness: byte-identity, caching, timing format.

The contract of ISSUE 5's tentpole: ``run_all(workers=N)`` must produce
the **byte-identical** report to ``run_all(workers=1)`` for any section
subset, any seed and any profile, because parallelism must never change
science output. These tests check that end to end on the QUICK profile
(a property-based sweep over sections x seeds plus a deterministic
full-report case), prove that a warm artifact cache skips every model
fit while leaving the report bytes unchanged, and pin the adaptive
elapsed-time format.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.runtime.pipeline as pipeline_mod
from repro.cache import ArtifactCache
from repro.experiments.parallel import (
    QUICK_PROFILE,
    SECTION_ORDER,
    Job,
    run_jobs,
    run_report_sections,
    warm_jobs,
)
from repro.experiments.runner import _fmt_elapsed, run_all

#: Cheap-enough sections for the property sweep (QUICK profile).
SWEEP_SECTIONS = ("FIG2", "FIG12", "FIG13", "FIG14", "TAB2", "EXTENSIONS")


class TestByteIdentity:
    @settings(max_examples=2, deadline=None)
    @given(
        sections=st.lists(
            st.sampled_from(SWEEP_SECTIONS), min_size=1, max_size=2,
            unique=True,
        ),
        seed=st.integers(min_value=0, max_value=2),
    )
    def test_parallel_report_matches_serial(self, tmp_path_factory, sections,
                                            seed):
        cache_dir = str(tmp_path_factory.mktemp("cache"))
        serial = run_all(
            seed=seed, profile=QUICK_PROFILE, sections=sections,
            timings=False,
        )
        parallel = run_all(
            seed=seed, profile=QUICK_PROFILE, sections=sections,
            timings=False, workers=2, cache=cache_dir,
        )
        assert parallel == serial

    def test_full_quick_report_identical_and_cached(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        serial = run_all(profile=QUICK_PROFILE, timings=False)
        parallel = run_all(
            profile=QUICK_PROFILE, timings=False, workers=2, cache=cache
        )
        assert parallel == serial
        # The warm-up wave trains once; every section job then hits.
        assert cache.hits > 0
        assert cache.misses <= len(
            warm_jobs(SECTION_ORDER, 0, QUICK_PROFILE)
        )


class TestWarmCache:
    def test_warm_rerun_skips_every_fit_and_matches_cold(
        self, tmp_path, monkeypatch
    ):
        cache = ArtifactCache(str(tmp_path))
        cold = run_all(
            profile=QUICK_PROFILE, sections=["FIG12"], timings=False,
            cache=cache,
        )
        assert cache.puts > 0

        fits = []
        real_fit = pipeline_mod._train_models

        def counting_fit(*args, **kwargs):
            fits.append(args)
            return real_fit(*args, **kwargs)

        monkeypatch.setattr(pipeline_mod, "_train_models", counting_fit)
        warm_cache = ArtifactCache(str(tmp_path))
        warm = run_all(
            profile=QUICK_PROFILE, sections=["FIG12"], timings=False,
            cache=warm_cache,
        )
        assert warm == cold
        assert fits == []  # every train_models call was a cache hit
        assert warm_cache.hits > 0
        assert warm_cache.misses == 0


class TestRunAllValidation:
    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown report sections"):
            run_all(sections=["FIG2", "NOPE"])

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_all(workers=0)

    def test_unknown_section_rejected_in_parallel_api(self):
        with pytest.raises(ValueError, match="unknown report sections"):
            run_report_sections(["BOGUS"], seed=0)


class TestJobDedup:
    def test_fig12_fig13_share_policy_runs(self, tmp_path):
        # FIG13's (scenario, policy) grid is a subset of FIG12's; the
        # fan-out must run each distinct cell once and reuse it.
        merged = run_report_sections(
            ["FIG12", "FIG13"], seed=0, profile=QUICK_PROFILE, workers=1,
            cache_root=str(tmp_path),
        )
        serial_12 = run_all(
            profile=QUICK_PROFILE, sections=["FIG12"], timings=False
        )
        serial_13 = run_all(
            profile=QUICK_PROFILE, sections=["FIG13"], timings=False
        )
        assert f"== FIG12 ==\n{merged.bodies['FIG12']}" == serial_12
        assert f"== FIG13 ==\n{merged.bodies['FIG13']}" == serial_13
        # 1 scenario x 5 policies total: the shared 4 ran once, so the
        # cache saw exactly one training miss (the warm-up job).
        assert merged.cache_misses == 1


def _double(x):
    return 2 * x


class TestRunJobs:
    def test_inline_results_ordered_and_timed(self):
        jobs = [Job("S", i, _double, (i,)) for i in range(4)]
        results = run_jobs(jobs, workers=1)
        assert [r.value for r in results] == [0, 2, 4, 6]
        assert [r.key for r in results] == [0, 1, 2, 3]
        assert all(r.elapsed_s >= 0 for r in results)
        assert all(r.cache_hits == 0 and r.cache_misses == 0 for r in results)


class TestElapsedFormat:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0.0, "0ms"),
            (0.042, "42ms"),
            (0.0994, "99ms"),
            (0.1, "0.1s"),
            (1.26, "1.3s"),
            (62.0, "62.0s"),
        ],
    )
    def test_adaptive_units(self, seconds, expected):
        assert _fmt_elapsed(seconds) == expected
