"""Tests for the experiment harness (runner, parallel fan-out, bench)."""
