"""Micro-benchmark suite: payload schema and the regression gate.

``repro bench`` is CI's perf-smoke gate (ISSUE 5): it emits
``BENCH_micro.json`` and fails when a benchmark's median exceeds
``max_regression`` times the checked-in baseline. These tests exercise
the payload schema, the gate arithmetic and its edge cases (missing
benchmarks are skipped, malformed baselines are loud errors) without
timing anything real — plus one smoke run of the cheapest benchmark to
keep the harness honest.
"""

import pytest

from repro.bench import (
    BENCHMARKS,
    SCHEMA_VERSION,
    BenchResult,
    check_against_baseline,
    results_payload,
    run_benchmark,
)


def _results():
    return [
        BenchResult(name="alpha", median_ms=2.0, rounds=3, iterations=10),
        BenchResult(name="beta", median_ms=0.5, rounds=3, iterations=100),
    ]


class TestPayload:
    def test_schema(self):
        payload = results_payload(_results())
        assert payload["version"] == SCHEMA_VERSION
        assert set(payload["benchmarks"]) == {"alpha", "beta"}
        assert payload["benchmarks"]["alpha"] == {
            "median_ms": 2.0,
            "rounds": 3,
            "iterations": 10,
        }

    def test_payload_round_trips_through_gate(self):
        results = _results()
        baseline = results_payload(results)
        assert check_against_baseline(results, baseline, 2.0) == []


class TestGate:
    def test_within_ratio_passes(self):
        baseline = results_payload(_results())
        current = [
            BenchResult(name="alpha", median_ms=3.9, rounds=3, iterations=10)
        ]
        assert check_against_baseline(current, baseline, 2.0) == []

    def test_over_ratio_fails_with_context(self):
        baseline = results_payload(_results())
        current = [
            BenchResult(name="alpha", median_ms=4.1, rounds=3, iterations=10)
        ]
        failures = check_against_baseline(current, baseline, 2.0)
        assert len(failures) == 1
        assert "alpha" in failures[0]
        assert "4.1" in failures[0]
        assert "2.0" in failures[0]

    def test_benchmark_missing_from_baseline_is_skipped(self):
        baseline = results_payload(
            [BenchResult(name="alpha", median_ms=2.0, rounds=3, iterations=10)]
        )
        current = [
            BenchResult(name="brand-new", median_ms=99.0, rounds=3,
                        iterations=1)
        ]
        assert check_against_baseline(current, baseline, 2.0) == []

    def test_nonpositive_baseline_is_skipped(self):
        baseline = {
            "version": SCHEMA_VERSION,
            "benchmarks": {
                "alpha": {"median_ms": 0.0, "rounds": 3, "iterations": 10}
            },
        }
        current = [
            BenchResult(name="alpha", median_ms=5.0, rounds=3, iterations=10)
        ]
        assert check_against_baseline(current, baseline, 2.0) == []

    @pytest.mark.parametrize(
        "baseline", [{}, {"version": SCHEMA_VERSION}, {"benchmarks": []}]
    )
    def test_malformed_baseline_rejected(self, baseline):
        with pytest.raises(ValueError):
            check_against_baseline(_results(), baseline, 2.0)


class TestSuite:
    def test_registry_names_are_sorted_keys(self):
        assert "balb_priority_of" in BENCHMARKS
        for name, (setup, iterations) in BENCHMARKS.items():
            assert callable(setup), name
            assert iterations >= 1, name

    def test_cheapest_benchmark_smoke(self):
        result = run_benchmark("balb_priority_of", rounds=2)
        assert result.name == "balb_priority_of"
        assert result.rounds == 2
        assert result.median_ms >= 0.0
