"""Tests for IoU/Hungarian track management."""

import pytest

from repro.geometry.box import BBox
from repro.vision.detector import Detection
from repro.vision.tracker import TrackManager
from repro.world.entities import ObjectClass


def det(cx, cy, w=40, h=40, gt=0, cam=0):
    return Detection(
        bbox=BBox.from_xywh(cx, cy, w, h),
        confidence=0.9,
        object_class=ObjectClass.CAR,
        gt_object_id=gt,
        camera_id=cam,
    )


class TestTrackManager:
    def test_new_detections_open_tracks(self):
        tm = TrackManager()
        touched, retired = tm.update([det(100, 100, gt=1), det(500, 100, gt=2)])
        assert len(touched) == 2
        assert retired == []
        assert len(tm.tracks) == 2

    def test_matching_by_iou(self):
        tm = TrackManager()
        tm.update([det(100, 100, gt=1)])
        tid = tm.tracks[0].track_id
        tm.update([det(105, 102, gt=1)])  # small move: same track
        assert len(tm.tracks) == 1
        assert tm.tracks[0].track_id == tid
        assert tm.tracks[0].hits == 2

    def test_distant_detection_opens_new_track(self):
        tm = TrackManager()
        tm.update([det(100, 100, gt=1)])
        tm.update([det(900, 500, gt=2)])
        assert len(tm.tracks) == 2

    def test_track_retired_after_misses(self):
        tm = TrackManager(max_misses=2)
        tm.update([det(100, 100)])
        retired_total = []
        for _ in range(4):
            _, retired = tm.update([])
            retired_total.extend(retired)
        assert len(retired_total) == 1
        assert tm.tracks == []

    def test_predicted_boxes_used_for_matching(self):
        tm = TrackManager(iou_threshold=0.3)
        tm.update([det(100, 100)])
        tid = tm.tracks[0].track_id
        # Object moved far; raw IoU would fail, flow prediction bridges it.
        predicted = {tid: BBox.from_xywh(200, 100, 40, 40)}
        tm.update([det(202, 101)], predicted=predicted)
        assert len(tm.tracks) == 1
        assert tm.tracks[0].track_id == tid

    def test_one_to_one_matching(self):
        tm = TrackManager()
        tm.update([det(100, 100, gt=1), det(140, 100, gt=2)])
        # Both detections near both tracks: hungarian keeps them 1:1.
        touched, _ = tm.update([det(102, 100, gt=1), det(142, 100, gt=2)])
        gts = sorted(t.last_gt_id for t in tm.tracks)
        assert gts == [1, 2]

    def test_track_ids_unique_and_monotone(self):
        tm = TrackManager()
        tm.update([det(100, 100)])
        tm.update([det(700, 400)])
        ids = [t.track_id for t in tm.tracks]
        assert ids == sorted(set(ids))

    def test_reset(self):
        tm = TrackManager()
        tm.update([det(100, 100)])
        tm.reset()
        assert tm.tracks == []

    def test_retire_specific_track(self):
        tm = TrackManager()
        tm.update([det(100, 100)])
        tid = tm.tracks[0].track_id
        tm.retire_track(tid)
        assert tm.track(tid) is None

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            TrackManager(iou_threshold=0.0)
        with pytest.raises(ValueError):
            TrackManager(max_misses=-1)

    def test_age_increments(self):
        tm = TrackManager()
        tm.update([det(100, 100)])
        tm.update([det(101, 100)])
        tm.update([det(102, 100)])
        assert tm.tracks[0].age == 3
