"""Tests for tracking-based image slicing."""

import pytest

from repro.geometry.box import BBox
from repro.vision.slicing import (
    Slice,
    TargetSizeBook,
    build_slices,
    slice_counts_by_size,
)


class TestTargetSizeBook:
    def test_assign_and_lookup(self):
        book = TargetSizeBook()
        size = book.assign(1, BBox.from_xywh(100, 100, 50, 40))
        assert size == 128  # 50 + 2*8 margin = 66 -> 128
        assert book.lookup(1) == 128

    def test_size_fixed_within_horizon(self):
        book = TargetSizeBook()
        book.assign(1, BBox.from_xywh(0, 0, 30, 30))
        # Object grew, but the pinned size is returned unchanged.
        assert book.lookup_or_assign(1, BBox.from_xywh(0, 0, 400, 400)) == 64

    def test_reset_clears(self):
        book = TargetSizeBook()
        book.assign(1, BBox.from_xywh(0, 0, 30, 30))
        book.reset()
        assert book.lookup(1) is None

    def test_drop_single_key(self):
        book = TargetSizeBook()
        book.assign(1, BBox.from_xywh(0, 0, 30, 30))
        book.assign(2, BBox.from_xywh(0, 0, 30, 30))
        book.drop(1)
        assert book.lookup(1) is None
        assert book.lookup(2) == 64

    def test_custom_size_set(self):
        book = TargetSizeBook(size_set=(32, 96))
        assert book.assign(1, BBox.from_xywh(0, 0, 40, 40)) == 96

    def test_empty_size_set_raises(self):
        with pytest.raises(ValueError):
            TargetSizeBook(size_set=())

    def test_sizes_snapshot(self):
        book = TargetSizeBook()
        book.assign(1, BBox.from_xywh(0, 0, 30, 30))
        snap = book.sizes()
        snap[99] = 512  # mutating the copy must not affect the book
        assert book.lookup(99) is None


class TestBuildSlices:
    def test_basic_slice_geometry(self):
        book = TargetSizeBook()
        predicted = {1: BBox.from_xywh(300, 300, 50, 40)}
        slices = build_slices(predicted, book, (1280, 704))
        assert len(slices) == 1
        s = slices[0]
        assert s.target_size == 128
        assert s.region.width == pytest.approx(128)
        assert s.region.center == pytest.approx((300, 300))

    def test_slice_shifted_inside_frame(self):
        book = TargetSizeBook()
        predicted = {1: BBox.from_xywh(10, 10, 50, 40)}  # near the corner
        slices = build_slices(predicted, book, (1280, 704))
        s = slices[0]
        assert s.region.x1 >= 0 and s.region.y1 >= 0
        assert s.region.width == pytest.approx(128)  # full size retained

    def test_deterministic_order_by_key(self):
        book = TargetSizeBook()
        predicted = {
            5: BBox.from_xywh(300, 300, 30, 30),
            1: BBox.from_xywh(500, 300, 30, 30),
        }
        slices = build_slices(predicted, book, (1280, 704))
        assert [s.key for s in slices] == [1, 5]

    def test_uses_pinned_sizes(self):
        book = TargetSizeBook()
        book.assign(1, BBox.from_xywh(0, 0, 30, 30))  # pinned at 64
        predicted = {1: BBox.from_xywh(300, 300, 300, 300)}  # grew a lot
        slices = build_slices(predicted, book, (1280, 704))
        assert slices[0].target_size == 64

    def test_empty_input(self):
        assert build_slices({}, TargetSizeBook(), (1280, 704)) == []


class TestSliceCounts:
    def test_counts_by_size(self):
        slices = [
            Slice(key=1, region=BBox(0, 0, 64, 64), target_size=64),
            Slice(key=2, region=BBox(0, 0, 64, 64), target_size=64),
            Slice(key=3, region=BBox(0, 0, 128, 128), target_size=128),
        ]
        assert slice_counts_by_size(slices) == {64: 2, 128: 1}

    def test_empty(self):
        assert slice_counts_by_size([]) == {}
