"""Tests for the simulated detector."""


import numpy as np

from repro.cameras.camera import Camera, CameraIntrinsics, CameraPose
from repro.geometry.box import BBox
from repro.vision.detector import DetectorErrorModel, SimulatedDetector
from repro.world.entities import ObjectClass, WorldObject


def make_camera():
    return Camera(
        camera_id=0,
        pose=CameraPose(x=0, y=0, z=6.0, yaw=0.0, pitch_down=0.3),
        intrinsics=CameraIntrinsics(focal_px=950, image_width=1280, image_height=704),
        max_range=80.0,
    )


def car_at(x, y, oid=0):
    return WorldObject.of_class(oid, ObjectClass.CAR, x, y, 0.0, 10.0)


def perfect_errors():
    return DetectorErrorModel(
        center_jitter_frac=0.0,
        size_jitter_frac=0.0,
        base_miss_prob=0.0,
        small_box_extra_miss=0.0,
        false_positive_rate=0.0,
    )


class TestFullFrame:
    def test_perfect_detector_sees_all_visible(self):
        cam = make_camera()
        det = SimulatedDetector(cam, perfect_errors(), np.random.default_rng(0))
        objects = [car_at(20, 0, 0), car_at(40, 5, 1), car_at(-30, 0, 2)]
        found = det.detect_full_frame(objects)
        assert sorted(d.gt_object_id for d in found) == [0, 1]

    def test_detection_box_matches_projection_when_noise_free(self):
        cam = make_camera()
        det = SimulatedDetector(cam, perfect_errors(), np.random.default_rng(0))
        obj = car_at(25, 0)
        found = det.detect_full_frame([obj])
        assert len(found) == 1
        true_box = cam.project_object(obj)
        assert found[0].bbox.iou(true_box) > 0.99

    def test_miss_probability_applied(self):
        cam = make_camera()
        errors = DetectorErrorModel(base_miss_prob=1.0, false_positive_rate=0.0)
        det = SimulatedDetector(cam, errors, np.random.default_rng(0))
        assert det.detect_full_frame([car_at(25, 0)]) == []

    def test_noise_perturbs_boxes(self):
        cam = make_camera()
        errors = DetectorErrorModel(
            center_jitter_frac=0.1, base_miss_prob=0.0, false_positive_rate=0.0
        )
        det = SimulatedDetector(cam, errors, np.random.default_rng(1))
        obj = car_at(25, 0)
        true_box = cam.project_object(obj)
        found = det.detect_full_frame([obj])
        assert found and found[0].bbox != true_box

    def test_false_positives_generated(self):
        cam = make_camera()
        errors = DetectorErrorModel(base_miss_prob=0.0, false_positive_rate=5.0)
        det = SimulatedDetector(cam, errors, np.random.default_rng(2))
        found = det.detect_full_frame([])
        assert any(d.gt_object_id == -1 for d in found)

    def test_detection_metadata(self):
        cam = make_camera()
        det = SimulatedDetector(cam, perfect_errors(), np.random.default_rng(3))
        found = det.detect_full_frame([car_at(25, 0, oid=9)])
        d = found[0]
        assert d.camera_id == 0
        assert d.object_class is ObjectClass.CAR
        assert 0.0 < d.confidence <= 1.0

    def test_small_boxes_miss_more(self):
        errors = DetectorErrorModel()
        small = BBox.from_xywh(0, 0, 10, 10)
        large = BBox.from_xywh(0, 0, 200, 200)
        assert errors.miss_probability(small) > errors.miss_probability(large)


class TestRegionDetection:
    def test_object_in_region_found(self):
        cam = make_camera()
        det = SimulatedDetector(cam, perfect_errors(), np.random.default_rng(4))
        obj = car_at(25, 0)
        region = cam.project_object(obj).expand(20)
        found = det.detect_regions([obj], [region])
        assert [d.gt_object_id for d in found] == [0]

    def test_object_outside_region_missed(self):
        cam = make_camera()
        det = SimulatedDetector(cam, perfect_errors(), np.random.default_rng(5))
        obj = car_at(25, 0)
        far_region = BBox(0, 0, 50, 50)
        assert det.detect_regions([obj], [far_region]) == []

    def test_no_duplicate_across_overlapping_regions(self):
        cam = make_camera()
        det = SimulatedDetector(cam, perfect_errors(), np.random.default_rng(6))
        obj = car_at(25, 0)
        region = cam.project_object(obj).expand(30)
        found = det.detect_regions([obj], [region, region.translate(5, 5)])
        assert len(found) == 1

    def test_empty_regions_no_detections(self):
        cam = make_camera()
        det = SimulatedDetector(cam, perfect_errors(), np.random.default_rng(7))
        assert det.detect_regions([car_at(25, 0)], []) == []

    def test_region_detection_never_invents_ids(self):
        cam = make_camera()
        det = SimulatedDetector(cam, None, np.random.default_rng(8))
        obj = car_at(25, 0)
        region = cam.project_object(obj).expand(20)
        for _ in range(20):
            for d in det.detect_regions([obj], [region]):
                assert d.gt_object_id == obj.object_id
