"""Tests for the optical-flow stand-in."""


import numpy as np
import pytest

from repro.cameras.camera import Camera, CameraIntrinsics, CameraPose
from repro.geometry.box import BBox
from repro.vision.flow import FlowNoiseModel, FlowPredictor, find_new_regions
from repro.world.entities import ObjectClass, WorldObject


def noise_free():
    return FlowNoiseModel(base_sigma_px=0.0, drift_growth=1.0)


class TestFlowPredictor:
    def test_requires_explicit_rng(self):
        # Regression: the silent default_rng(0) fallback was removed —
        # every predictor draws noise, so its stream must be owned.
        with pytest.raises(ValueError, match="explicit rng"):
            FlowPredictor(noise_free())

    def test_predict_unknown_key_none(self):
        flow = FlowPredictor(noise_free(), np.random.default_rng(0))
        assert flow.predict(42) is None

    def test_static_object_prediction(self):
        flow = FlowPredictor(noise_free(), np.random.default_rng(0))
        box = BBox.from_xywh(100, 100, 40, 40)
        flow.observe(1, box)
        pred = flow.predict(1)
        assert pred.center == pytest.approx(box.center)

    def test_velocity_extrapolation(self):
        flow = FlowPredictor(noise_free(), np.random.default_rng(0))
        flow.observe(1, BBox.from_xywh(100, 100, 40, 40))
        flow.observe(1, BBox.from_xywh(110, 100, 40, 40))  # moved +10 px/frame
        pred = flow.predict(1)
        assert pred.center[0] == pytest.approx(120.0)

    def test_velocity_averages_over_missed_frames(self):
        flow = FlowPredictor(noise_free(), np.random.default_rng(0))
        flow.observe(1, BBox.from_xywh(100, 100, 40, 40))
        flow.predict(1)
        flow.predict(1)  # two unobserved frames
        flow.observe(1, BBox.from_xywh(130, 100, 40, 40))
        # 30 px over 3 frames -> 10 px/frame
        pred = flow.predict(1)
        assert pred.center[0] == pytest.approx(140.0)

    def test_noise_grows_with_staleness(self):
        noise = FlowNoiseModel(base_sigma_px=2.0, drift_growth=2.0)
        rng = np.random.default_rng(0)
        spreads = []
        for frames in (1, 4):
            deltas = []
            for trial in range(200):
                flow = FlowPredictor(noise, np.random.default_rng(trial))
                flow.observe(1, BBox.from_xywh(0, 0, 10, 10))
                pred = None
                for _ in range(frames):
                    pred = flow.predict(1)
                deltas.append(pred.center[0])
            spreads.append(np.std(deltas))
        assert spreads[1] > spreads[0] * 2

    def test_drop_and_tracked_keys(self):
        flow = FlowPredictor(noise_free(), np.random.default_rng(0))
        flow.observe(1, BBox.from_xywh(0, 0, 10, 10))
        flow.observe(2, BBox.from_xywh(5, 5, 10, 10))
        assert flow.tracked_keys() == [1, 2]
        flow.drop(1)
        assert flow.tracked_keys() == [2]
        assert flow.predict(1) is None

    def test_staleness_counter(self):
        flow = FlowPredictor(noise_free(), np.random.default_rng(0))
        flow.observe(1, BBox.from_xywh(0, 0, 10, 10))
        assert flow.staleness(1) == 0
        flow.predict(1)
        flow.predict(1)
        assert flow.staleness(1) == 2
        flow.observe(1, BBox.from_xywh(1, 0, 10, 10))
        assert flow.staleness(1) == 0
        assert flow.staleness(99) == -1


class TestNewRegions:
    def make_camera(self):
        return Camera(
            camera_id=0,
            pose=CameraPose(x=0, y=0, z=6.0, yaw=0.0, pitch_down=0.3),
            intrinsics=CameraIntrinsics(
                focal_px=950, image_width=1280, image_height=704
            ),
            max_range=80.0,
        )

    def moving_car(self, x=25.0, y=0.0, speed=10.0):
        return WorldObject.of_class(0, ObjectClass.CAR, x, y, 0.0, speed)

    def test_unexplained_mover_reported(self):
        cam = self.make_camera()
        regions = find_new_regions(
            cam, [self.moving_car()], [], np.random.default_rng(0)
        )
        assert len(regions) == 1
        true_box = cam.project_object(self.moving_car())
        assert regions[0].iou(true_box) > 0.3

    def test_explained_mover_not_reported(self):
        cam = self.make_camera()
        obj = self.moving_car()
        predicted = cam.project_object(obj).expand(10)
        regions = find_new_regions(
            cam, [obj], [predicted], np.random.default_rng(1)
        )
        assert regions == []

    def test_static_object_invisible_to_flow(self):
        cam = self.make_camera()
        parked = self.moving_car(speed=0.0)
        regions = find_new_regions(cam, [parked], [], np.random.default_rng(2))
        assert regions == []

    def test_out_of_view_object_not_reported(self):
        cam = self.make_camera()
        behind = self.moving_car(x=-30.0)
        regions = find_new_regions(cam, [behind], [], np.random.default_rng(3))
        assert regions == []

    def test_regions_clipped_to_frame(self):
        cam = self.make_camera()
        regions = find_new_regions(
            cam, [self.moving_car(x=10.0, y=-4.0)], [], np.random.default_rng(4)
        )
        for region in regions:
            assert region.x1 >= 0 and region.y1 >= 0
            assert region.x2 <= 1280 and region.y2 <= 704
