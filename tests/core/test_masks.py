"""Tests for camera cell masks and owner rules."""

import numpy as np
import pytest

from repro.association.pairwise import PairwiseAssociator
from repro.association.training import AssociationDataset
from repro.core.masks import (
    CameraMask,
    build_camera_masks,
    capacity_owner,
    priority_owner,
)
from repro.geometry.box import BBox


def make_mask(coverage_fn, nx=4, ny=3, camera_id=0):
    coverage = [
        [tuple(coverage_fn(ix, iy)) for ix in range(nx)] for iy in range(ny)
    ]
    return CameraMask(
        camera_id=camera_id,
        frame_w=400.0,
        frame_h=300.0,
        nx=nx,
        ny=ny,
        coverage=coverage,
    )


class TestCameraMask:
    def test_cell_of_centre(self):
        mask = make_mask(lambda ix, iy: [0])
        assert mask.cell_of(BBox.from_xywh(50, 50, 10, 10)) == (0, 0)
        assert mask.cell_of(BBox.from_xywh(350, 250, 10, 10)) == (3, 2)

    def test_cell_clamped_to_grid(self):
        mask = make_mask(lambda ix, iy: [0])
        assert mask.cell_of(BBox.from_xywh(-50, -50, 10, 10)) == (0, 0)
        assert mask.cell_of(BBox.from_xywh(999, 999, 10, 10)) == (3, 2)

    def test_coverage_of(self):
        mask = make_mask(lambda ix, iy: [0, 1] if ix < 2 else [0])
        assert mask.coverage_of(BBox.from_xywh(50, 50, 10, 10)) == (0, 1)
        assert mask.coverage_of(BBox.from_xywh(350, 50, 10, 10)) == (0,)

    def test_owned_cells(self):
        mask = make_mask(lambda ix, iy: [0, 1] if ix < 2 else [0])
        # Owner rule: camera 1 wins every shared cell, camera 0 the rest.
        owned = mask.owned_cells(lambda cov: 1 if 1 in cov else 0)
        assert all(ix >= 2 for ix, _ in owned)  # mask belongs to camera 0
        assert len(owned) == 2 * 3

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            CameraMask(0, 100, 100, 2, 2, coverage=[[(0,)]])

    def test_invalid_grid_raises(self):
        with pytest.raises(ValueError):
            CameraMask(0, 100, 100, 0, 2, coverage=[])


class TestOwnerRules:
    def test_priority_owner_first_in_order(self):
        assert priority_owner((0, 1, 2), (2, 0, 1)) == 2

    def test_priority_owner_respects_exclusion(self):
        assert priority_owner((0, 1, 2), (2, 0, 1), exclude=(2,)) == 0

    def test_priority_owner_none_when_empty(self):
        assert priority_owner((), (0, 1)) is None
        assert priority_owner((0,), (0,), exclude=(0,)) is None

    def test_capacity_owner_single_camera(self):
        assert capacity_owner((3,), {3: 1.0}, (0, 0)) == 3

    def test_capacity_owner_contiguous_bands(self):
        capacities = {0: 1.0, 1: 1.0}
        owners = [
            capacity_owner((0, 1), capacities, (ix, 0), grid_nx=16)
            for ix in range(16)
        ]
        # Equal capacity: left half owned by 0, right half by 1.
        assert owners == sorted(owners)
        assert owners.count(0) == 8 and owners.count(1) == 8

    def test_capacity_owner_proportional(self):
        capacities = {0: 3.0, 1: 1.0}
        owners = [
            capacity_owner((0, 1), capacities, (ix, 0), grid_nx=16)
            for ix in range(16)
        ]
        assert owners.count(0) == 12 and owners.count(1) == 4

    def test_capacity_owner_empty_none(self):
        assert capacity_owner((), {}, (0, 0)) is None


class TestBuildMasks:
    def visible_associator(self):
        """Associator trained so camera 0's left half maps to camera 1."""
        rng = np.random.default_rng(0)
        ds = AssociationDataset()
        fwd = ds.pair(0, 1)
        back = ds.pair(1, 0)
        for _ in range(800):
            cx = rng.uniform(0, 400)
            cy = rng.uniform(0, 300)
            src = BBox.from_xywh(cx, cy, 40, 28)
            dst = src.translate(100, 0) if cx < 200 else None
            fwd.add(src, dst)
            if dst is not None:
                back.add(dst, src)
            else:
                back.add(BBox.from_xywh(cx, cy, 40, 28), None)
        return PairwiseAssociator().fit(ds)

    def test_masks_built_for_all_cameras(self):
        assoc = self.visible_associator()
        masks = build_camera_masks(
            {0: (400, 300), 1: (400, 300)}, assoc, {0: 40.0, 1: 40.0},
            grid=(8, 6),
        )
        assert set(masks) == {0, 1}
        assert masks[0].nx == 8 and masks[0].ny == 6

    def test_own_camera_always_in_coverage(self):
        assoc = self.visible_associator()
        masks = build_camera_masks(
            {0: (400, 300), 1: (400, 300)}, assoc, {0: 40.0, 1: 40.0},
            grid=(8, 6),
        )
        for mask in masks.values():
            for row in mask.coverage:
                for cell in row:
                    assert mask.camera_id in cell

    def test_covisible_region_detected(self):
        assoc = self.visible_associator()
        masks = build_camera_masks(
            {0: (400, 300), 1: (400, 300)}, assoc, {0: 40.0, 1: 40.0},
            grid=(8, 6),
        )
        left = masks[0].coverage_of(BBox.from_xywh(50, 150, 40, 28))
        right = masks[0].coverage_of(BBox.from_xywh(350, 150, 40, 28))
        assert left == (0, 1)
        assert right == (0,)
