"""Tests for the central-stage BALB algorithm (Algorithm 1)."""

import pytest

from repro.core.balb import balb_central, order_objects
from repro.core.problem import (
    MVSInstance,
    SchedObject,
    is_feasible,
    latency_profile,
    system_latency,
)
from repro.devices.profiler import DeviceProfile


def profile(name="dev", t_full=100.0, t64=5.0, t128=10.0, b64=4, b128=2):
    return DeviceProfile(
        device_name=name,
        size_set=(64, 128),
        t_full=t_full,
        batch_latency_ms={64: t64, 128: t128},
        batch_limits={64: b64, 128: b128},
    )


class TestOrdering:
    def test_orders_by_coverage_size(self):
        objs = [
            SchedObject(key=0, target_sizes={0: 64, 1: 64}),
            SchedObject(key=1, target_sizes={0: 64}),
        ]
        ordered = order_objects(objs)
        assert [o.key for o in ordered] == [1, 0]

    def test_ties_broken_by_larger_size(self):
        objs = [
            SchedObject(key=0, target_sizes={0: 64}),
            SchedObject(key=1, target_sizes={0: 128}),
        ]
        ordered = order_objects(objs)
        assert [o.key for o in ordered] == [1, 0]

    def test_stable_by_key_last(self):
        objs = [
            SchedObject(key=1, target_sizes={0: 64}),
            SchedObject(key=0, target_sizes={0: 64}),
        ]
        assert [o.key for o in order_objects(objs)] == [0, 1]


class TestBALBCentral:
    def test_assignment_always_feasible(self):
        profiles = {0: profile("a"), 1: profile("b", t64=20.0)}
        objects = tuple(
            SchedObject(key=j, target_sizes={0: 64, 1: 64} if j % 2 else {0: 64})
            for j in range(9)
        )
        inst = MVSInstance(profiles=profiles, objects=objects)
        result = balb_central(inst)
        assert is_feasible(inst, result.assignment)

    def test_single_view_objects_forced(self):
        profiles = {0: profile("a"), 1: profile("b")}
        objects = (SchedObject(key=0, target_sizes={1: 64}),)
        inst = MVSInstance(profiles=profiles, objects=objects)
        result = balb_central(inst)
        assert result.assignment[0] == 1

    def test_internal_latencies_match_recomputation(self):
        profiles = {
            0: profile("a"),
            1: profile("b", t64=7.0, t128=13.0, b64=3, b128=1),
        }
        objects = tuple(
            SchedObject(
                key=j,
                target_sizes={0: 64 if j % 2 else 128, 1: 128 if j % 3 else 64},
            )
            for j in range(12)
        )
        inst = MVSInstance(profiles=profiles, objects=objects)
        result = balb_central(inst)
        recomputed = latency_profile(
            inst, result.assignment, include_full_frame=True
        )
        for cam, lat in result.camera_latencies.items():
            assert lat == pytest.approx(recomputed[cam])

    def test_load_balances_across_identical_cameras(self):
        profiles = {0: profile("a", b64=1), 1: profile("b", b64=1)}
        objects = tuple(
            SchedObject(key=j, target_sizes={0: 64, 1: 64}) for j in range(6)
        )
        inst = MVSInstance(profiles=profiles, objects=objects)
        result = balb_central(inst, include_full_frame=False)
        counts = {0: 0, 1: 0}
        for cam in result.assignment.values():
            counts[cam] += 1
        assert counts == {0: 3, 1: 3}

    def test_prefers_filling_incomplete_batches(self):
        # Camera 0 gets the first object (new batch, limit 4). The three
        # following objects should ride in that same batch for free, even
        # though camera 1 is idle.
        profiles = {0: profile("a", t_full=10.0), 1: profile("b", t_full=10.0)}
        objects = (
            SchedObject(key=0, target_sizes={0: 64}),  # forced to cam 0
            SchedObject(key=1, target_sizes={0: 64, 1: 64}),
            SchedObject(key=2, target_sizes={0: 64, 1: 64}),
            SchedObject(key=3, target_sizes={0: 64, 1: 64}),
        )
        inst = MVSInstance(profiles=profiles, objects=objects)
        result = balb_central(inst)
        assert all(cam == 0 for cam in result.assignment.values())
        # Batch-awareness disabled: shared objects spill to the idle camera.
        naive = balb_central(inst, batch_aware=False)
        assert any(cam == 1 for cam in naive.assignment.values())

    def test_full_frame_init_biases_away_from_slow_camera(self):
        profiles = {
            0: profile("fast", t_full=50.0),
            1: profile("slow", t_full=500.0),
        }
        objects = tuple(
            SchedObject(key=j, target_sizes={0: 128, 1: 128}) for j in range(4)
        )
        inst = MVSInstance(profiles=profiles, objects=objects)
        result = balb_central(inst, include_full_frame=True)
        assert all(cam == 0 for cam in result.assignment.values())

    def test_heterogeneous_speed_considered(self):
        # Same current latency, but the object is much cheaper on camera 0.
        profiles = {
            0: profile("fast", t128=10.0),
            1: profile("slow", t128=100.0),
        }
        objects = (SchedObject(key=0, target_sizes={0: 128, 1: 128}),)
        inst = MVSInstance(profiles=profiles, objects=objects)
        result = balb_central(inst, include_full_frame=False)
        assert result.assignment[0] == 0

    def test_priority_order_increasing_latency(self):
        profiles = {
            0: profile("fast", t_full=50.0),
            1: profile("slow", t_full=500.0),
            2: profile("mid", t_full=200.0),
        }
        inst = MVSInstance(profiles=profiles, objects=())
        result = balb_central(inst)
        assert result.priority_order == (0, 2, 1)
        assert result.priority_of(0) == 0
        assert result.priority_of(1) == 2

    def test_empty_object_set(self):
        inst = MVSInstance(profiles={0: profile()}, objects=())
        result = balb_central(inst)
        assert result.assignment == {}
        assert result.camera_latencies[0] == pytest.approx(100.0)

    def test_system_latency_no_worse_than_single_camera_dump(self):
        """BALB should never be worse than assigning everything to one
        camera that sees everything."""
        profiles = {0: profile("a"), 1: profile("b", t64=8.0)}
        objects = tuple(
            SchedObject(key=j, target_sizes={0: 64, 1: 64}) for j in range(10)
        )
        inst = MVSInstance(profiles=profiles, objects=objects)
        result = balb_central(inst, include_full_frame=False)
        balb_lat = system_latency(inst, result.assignment)
        dump_lat = system_latency(inst, {j: 0 for j in range(10)})
        assert balb_lat <= dump_lat + 1e-9


class TestPriorityOfLookup:
    """`priority_of` is rank-dict backed; it must keep tuple.index semantics."""

    def result_with_order(self, order):
        from repro.core.balb import BALBResult

        return BALBResult(
            assignment={},
            camera_latencies={cam: float(cam) for cam in order},
            priority_order=tuple(order),
        )

    def test_matches_tuple_index_for_every_camera(self):
        order = (7, 3, 11, 0, 5)
        result = self.result_with_order(order)
        for cam in order:
            assert result.priority_of(cam) == order.index(cam)

    def test_unknown_camera_raises_value_error(self):
        result = self.result_with_order((0, 1, 2))
        with pytest.raises(ValueError):
            result.priority_of(99)

    def test_survives_pickle_roundtrip(self):
        import pickle

        result = self.result_with_order((4, 2, 9))
        clone = pickle.loads(pickle.dumps(result))
        assert [clone.priority_of(c) for c in (4, 2, 9)] == [0, 1, 2]
