"""Tests for the MVS problem formulation."""


import pytest

from repro.core.problem import (
    MVSInstance,
    SchedObject,
    camera_latency,
    camera_size_counts,
    is_feasible,
    latency_profile,
    system_latency,
)
from repro.devices.profiler import DeviceProfile


def profile(name="dev", t_full=100.0, t64=5.0, t128=10.0, b64=4, b128=2):
    return DeviceProfile(
        device_name=name,
        size_set=(64, 128),
        t_full=t_full,
        batch_latency_ms={64: t64, 128: t128},
        batch_limits={64: b64, 128: b128},
    )


def two_camera_instance():
    profiles = {0: profile("fast"), 1: profile("slow", t64=20.0, t128=40.0)}
    objects = (
        SchedObject(key=0, target_sizes={0: 64}),
        SchedObject(key=1, target_sizes={0: 64, 1: 64}),
        SchedObject(key=2, target_sizes={1: 128}),
    )
    return MVSInstance(profiles=profiles, objects=objects)


class TestSchedObject:
    def test_coverage_from_sizes(self):
        obj = SchedObject(key=0, target_sizes={2: 64, 5: 128})
        assert obj.coverage == frozenset({2, 5})
        assert obj.size_on(2) == 64

    def test_empty_coverage_raises(self):
        with pytest.raises(ValueError):
            SchedObject(key=0, target_sizes={})

    def test_unknown_camera_raises(self):
        obj = SchedObject(key=0, target_sizes={1: 64})
        with pytest.raises(KeyError):
            obj.size_on(9)


class TestMVSInstance:
    def test_camera_ids_sorted(self):
        assert two_camera_instance().camera_ids == [0, 1]

    def test_unknown_coverage_camera_rejected(self):
        with pytest.raises(ValueError):
            MVSInstance(
                profiles={0: profile()},
                objects=(SchedObject(key=0, target_sizes={7: 64}),),
            )

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            MVSInstance(profiles={}, objects=())

    def test_object_lookup(self):
        inst = two_camera_instance()
        assert inst.object_by_key(1).key == 1
        with pytest.raises(KeyError):
            inst.object_by_key(99)


class TestFeasibility:
    def test_valid_assignment(self):
        inst = two_camera_instance()
        assert is_feasible(inst, {0: 0, 1: 0, 2: 1})
        assert is_feasible(inst, {0: 0, 1: 1, 2: 1})

    def test_missing_object_infeasible(self):
        inst = two_camera_instance()
        assert not is_feasible(inst, {0: 0, 1: 0})

    def test_wrong_camera_infeasible(self):
        inst = two_camera_instance()
        assert not is_feasible(inst, {0: 1, 1: 0, 2: 1})

    def test_extra_object_infeasible(self):
        inst = two_camera_instance()
        assert not is_feasible(inst, {0: 0, 1: 0, 2: 1, 3: 0})


class TestLatency:
    def test_size_counts(self):
        inst = two_camera_instance()
        assignment = {0: 0, 1: 0, 2: 1}
        assert camera_size_counts(inst, assignment, 0) == {64: 2}
        assert camera_size_counts(inst, assignment, 1) == {128: 1}

    def test_batched_latency(self):
        inst = two_camera_instance()
        # Camera 0: 2 objects at size 64, batch limit 4 -> one batch of t=5.
        assert camera_latency(inst, {0: 0, 1: 0, 2: 1}, 0) == pytest.approx(5.0)

    def test_latency_ceil_batches(self):
        profiles = {0: profile(b64=2)}
        objects = tuple(
            SchedObject(key=j, target_sizes={0: 64}) for j in range(5)
        )
        inst = MVSInstance(profiles=profiles, objects=objects)
        # 5 objects, limit 2 -> ceil(5/2) = 3 batches.
        assert camera_latency(inst, {j: 0 for j in range(5)}, 0) == pytest.approx(
            15.0
        )

    def test_full_frame_term(self):
        inst = two_camera_instance()
        base = camera_latency(inst, {0: 0, 1: 0, 2: 1}, 0)
        with_full = camera_latency(
            inst, {0: 0, 1: 0, 2: 1}, 0, include_full_frame=True
        )
        assert with_full == pytest.approx(base + 100.0)

    def test_system_latency_is_max(self):
        inst = two_camera_instance()
        assignment = {0: 0, 1: 0, 2: 1}
        prof = latency_profile(inst, assignment)
        assert system_latency(inst, assignment) == max(prof.values())

    def test_mixed_sizes_summed(self):
        profiles = {0: profile()}
        objects = (
            SchedObject(key=0, target_sizes={0: 64}),
            SchedObject(key=1, target_sizes={0: 128}),
        )
        inst = MVSInstance(profiles=profiles, objects=objects)
        assert camera_latency(inst, {0: 0, 1: 0}, 0) == pytest.approx(15.0)
