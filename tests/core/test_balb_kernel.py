"""Parity of the flat-array BALB packing kernel with the dict reference.

The central stage has two interchangeable engines: the dict-based
reference loop (``_balb_central``) and the flat-array kernel
(``_balb_central_kernel``) that runs compiled under ``REPRO_KERNEL=numba``.
These tests prove, on the property-test corpus, that the two produce
bit-identical schedules — assignments, camera latencies (exact float
equality) and priority orders — under every flag combination, and that
the environment-selected kernel actually drives ``balb_central``.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core import _kernels
from repro.core.balb import _balb_central, _balb_central_kernel, balb_central

from tests.core.test_balb_properties import mvs_instances

KERNELS = ("python", "numba")


class TestKernelParity:
    @settings(max_examples=150, deadline=None)
    @given(
        mvs_instances(),
        st.booleans(),
        st.booleans(),
        st.booleans(),
    )
    def test_kernel_bitwise_matches_reference(
        self, inst, include_full, batch_aware, coverage_ordered
    ):
        ref = _balb_central(inst, include_full, batch_aware, coverage_ordered)
        ker = _balb_central_kernel(
            inst, include_full, batch_aware, coverage_ordered
        )
        assert ker.assignment == ref.assignment
        # Exact equality: the kernel's float arithmetic is grouped
        # identically, so not even the last ulp may differ.
        assert ker.camera_latencies == ref.camera_latencies
        assert ker.priority_order == ref.priority_order

    @settings(max_examples=50, deadline=None)
    @given(mvs_instances())
    def test_active_kernel_drives_balb_central(self, inst):
        via_public = balb_central(inst)
        ref = _balb_central(inst, True, True, True)
        assert via_public.assignment == ref.assignment
        assert via_public.camera_latencies == ref.camera_latencies


# A deterministic instance built identically in-process and in the
# REPRO_KERNEL subprocesses below.
_INSTANCE_SRC = textwrap.dedent(
    """
    from repro.core.problem import MVSInstance, SchedObject
    from repro.devices.profiler import DeviceProfile

    def make_instance():
        sizes = (64, 128, 256)
        profiles = {
            cam: DeviceProfile(
                device_name=f"dev{cam}",
                size_set=sizes,
                t_full=80.0 + 13.0 * cam,
                batch_latency_ms={
                    64: 3.0 + cam,
                    128: 7.5 + 0.5 * cam,
                    256: 19.25 + cam,
                },
                batch_limits={64: 4, 128: 3, 256: 2},
            )
            for cam in range(3)
        }
        objects = tuple(
            SchedObject(
                key=key,
                target_sizes={
                    cam: sizes[(key + cam) % 3]
                    for cam in range(3)
                    if (key + cam) % 4 != 0
                },
            )
            for key in range(9)
            if any((key + cam) % 4 != 0 for cam in range(3))
        )
        return MVSInstance(profiles=profiles, objects=objects)
    """
)

_SUBPROCESS_SRC = _INSTANCE_SRC + textwrap.dedent(
    """
    import json
    from repro.core import _kernels
    from repro.core.balb import balb_central

    result = balb_central(make_instance())
    print(json.dumps({
        "kernel": _kernels.KERNEL,
        "assignment": sorted(result.assignment.items()),
        "latencies": sorted(
            (cam, lat.hex()) for cam, lat in result.camera_latencies.items()
        ),
        "priority": list(result.priority_order),
    }))
    """
)


@pytest.mark.parametrize("kernel", KERNELS)
def test_env_selected_kernel_is_bit_identical(kernel):
    """``REPRO_KERNEL=<kernel>`` selects that engine and changes nothing."""
    if kernel == "numba":
        pytest.importorskip("numba")
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = {
        **os.environ,
        "REPRO_KERNEL": kernel,
        "PYTHONPATH": src_root + os.pathsep + os.environ.get("PYTHONPATH", ""),
    }
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SRC],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    reported = json.loads(proc.stdout)
    assert reported["kernel"] == kernel

    namespace: dict = {}
    exec(_INSTANCE_SRC, namespace)
    ref = _balb_central(namespace["make_instance"](), True, True, True)
    # JSON round-trips tuples as lists; normalize both sides.
    assert reported["assignment"] == [
        list(item) for item in sorted(ref.assignment.items())
    ]
    assert reported["latencies"] == [
        [cam, lat.hex()]
        for cam, lat in sorted(ref.camera_latencies.items())
    ]
    assert reported["priority"] == list(ref.priority_order)


def test_unknown_kernel_name_is_rejected():
    env = {**os.environ, "REPRO_KERNEL": "cuda"}
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", "import repro.core._kernels"],
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode != 0
    assert "REPRO_KERNEL" in proc.stderr
