"""Tests for the distributed BALB stage."""

import pytest

from repro.core.distributed import DistributedPolicy
from repro.core.masks import CameraMask
from repro.geometry.box import BBox


def mask_with(coverage_fn, camera_id=0, nx=4, ny=3):
    coverage = [
        [tuple(coverage_fn(ix, iy)) for ix in range(nx)] for iy in range(ny)
    ]
    return CameraMask(
        camera_id=camera_id,
        frame_w=400.0,
        frame_h=300.0,
        nx=nx,
        ny=ny,
        coverage=coverage,
    )


def box_in_cell(ix, iy, nx=4, ny=3, w=400.0, h=300.0):
    return BBox.from_xywh((ix + 0.5) / nx * w, (iy + 0.5) / ny * h, 20, 20)


class TestNewObjectRule:
    def test_highest_priority_tracks(self):
        # Cell covered by cameras 0 and 1; priority order (1, 0).
        mask0 = mask_with(lambda ix, iy: [0, 1], camera_id=0)
        mask1 = mask_with(lambda ix, iy: [0, 1], camera_id=1)
        p0 = DistributedPolicy(0, mask0, (1, 0))
        p1 = DistributedPolicy(1, mask1, (1, 0))
        box = box_in_cell(1, 1)
        assert not p0.should_track_new_object(box)
        assert p1.should_track_new_object(box)

    def test_exclusive_cell_always_tracked(self):
        mask = mask_with(lambda ix, iy: [0], camera_id=0)
        policy = DistributedPolicy(0, mask, (1, 0))
        assert policy.should_track_new_object(box_in_cell(0, 0))

    def test_consistency_across_cameras(self):
        """When both cameras' masks agree that a region is co-visible (the
        synchronized information), exactly one of them claims a new object
        there, whatever the priority order."""
        mask0 = mask_with(lambda ix, iy: [0, 1], camera_id=0)
        mask1 = mask_with(lambda ix, iy: [0, 1], camera_id=1)
        for order in ((0, 1), (1, 0)):
            p0 = DistributedPolicy(0, mask0, order)
            p1 = DistributedPolicy(1, mask1, order)
            for ix in range(4):
                box = box_in_cell(ix, 0)
                claims = int(p0.should_track_new_object(box)) + int(
                    p1.should_track_new_object(box)
                )
                assert claims == 1


class TestTakeoverRule:
    def covering_policy(self, order=(0, 1, 2)):
        # Cells in column 0 visible to all; column 3 visible only to me (0).
        mask = mask_with(
            lambda ix, iy: [0, 1, 2] if ix == 0 else [0], camera_id=0
        )
        return DistributedPolicy(0, mask, order)

    def test_no_takeover_while_assigned_camera_sees_it(self):
        policy = self.covering_policy()
        box = box_in_cell(0, 0)  # assigned camera 1 still covers this cell
        assert not policy.assigned_camera_lost_object(box, 1)
        assert not policy.should_take_over(box, 1)

    def test_takeover_when_assigned_camera_lost_it(self):
        policy = self.covering_policy()
        box = box_in_cell(3, 0)  # only camera 0 covers this cell
        assert policy.assigned_camera_lost_object(box, 1)
        assert policy.should_take_over(box, 1)

    def test_no_takeover_when_lower_priority(self):
        # Cell covered by 0 and 2; camera 1 lost the object; priority 2 > 0.
        mask = mask_with(lambda ix, iy: [0, 2], camera_id=0)
        policy = DistributedPolicy(0, mask, (2, 0, 1))
        box = box_in_cell(1, 1)
        assert policy.assigned_camera_lost_object(box, 1)
        assert not policy.should_take_over(box, 1)

    def test_own_assignment_never_lost(self):
        policy = self.covering_policy()
        assert not policy.assigned_camera_lost_object(box_in_cell(3, 0), 0)

    def test_owner_of_diagnostic(self):
        policy = self.covering_policy(order=(2, 0, 1))
        assert policy.owner_of(box_in_cell(0, 0)) == 2
        assert policy.owner_of(box_in_cell(3, 0)) == 0


class TestValidation:
    def test_camera_must_be_in_priority_order(self):
        mask = mask_with(lambda ix, iy: [0], camera_id=0)
        with pytest.raises(ValueError):
            DistributedPolicy(0, mask, (1, 2))
