"""Property-based tests for the scheduling core."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balb import balb_central
from repro.core.optimal import optimal_assignment
from repro.core.problem import (
    MVSInstance,
    SchedObject,
    is_feasible,
    latency_profile,
    system_latency,
)
from repro.devices.profiler import DeviceProfile


@st.composite
def instances(draw, max_cameras=4, max_objects=10):
    n_cams = draw(st.integers(1, max_cameras))
    sizes = (64, 128)
    profiles = {}
    for cam in range(n_cams):
        t64 = draw(st.floats(1.0, 50.0))
        t128 = draw(st.floats(t64, 100.0))
        profiles[cam] = DeviceProfile(
            device_name=f"cam{cam}",
            size_set=sizes,
            t_full=draw(st.floats(50.0, 600.0)),
            batch_latency_ms={64: t64, 128: t128},
            batch_limits={
                64: draw(st.integers(1, 8)),
                128: draw(st.integers(1, 4)),
            },
        )
    n_objs = draw(st.integers(0, max_objects))
    objects = []
    for j in range(n_objs):
        cover = draw(
            st.sets(st.integers(0, n_cams - 1), min_size=1, max_size=n_cams)
        )
        objects.append(
            SchedObject(
                key=j,
                target_sizes={
                    cam: draw(st.sampled_from(sizes)) for cam in cover
                },
            )
        )
    return MVSInstance(profiles=profiles, objects=tuple(objects))


class TestBALBProperties:
    @settings(max_examples=80, deadline=None)
    @given(instances())
    def test_assignment_feasible(self, inst):
        result = balb_central(inst)
        assert is_feasible(inst, result.assignment)

    @settings(max_examples=80, deadline=None)
    @given(instances())
    def test_internal_latency_bookkeeping_consistent(self, inst):
        result = balb_central(inst)
        recomputed = latency_profile(
            inst, result.assignment, include_full_frame=True
        )
        for cam, lat in result.camera_latencies.items():
            assert abs(lat - recomputed[cam]) < 1e-6

    @settings(max_examples=80, deadline=None)
    @given(instances())
    def test_priority_order_sorted_by_latency(self, inst):
        result = balb_central(inst)
        lats = [result.camera_latencies[cam] for cam in result.priority_order]
        assert lats == sorted(lats)

    @settings(max_examples=80, deadline=None)
    @given(instances())
    def test_ablated_variants_feasible(self, inst):
        for kwargs in (
            {"batch_aware": False},
            {"coverage_ordered": False},
            {"include_full_frame": False},
        ):
            result = balb_central(inst, **kwargs)
            assert is_feasible(inst, result.assignment)

    @settings(max_examples=40, deadline=None)
    @given(instances(max_cameras=3, max_objects=7))
    def test_never_beats_optimal(self, inst):
        result = balb_central(inst)
        balb_lat = system_latency(inst, result.assignment, True)
        _, opt_lat = optimal_assignment(inst)
        assert balb_lat >= opt_lat - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(instances(max_cameras=3, max_objects=7))
    def test_optimal_is_feasible_and_tight(self, inst):
        assignment, latency = optimal_assignment(inst)
        assert is_feasible(inst, assignment) or not inst.objects
        assert abs(system_latency(inst, assignment, True) - latency) < 1e-6
