"""Tests for the Section V extension modules: redundancy, bandwidth,
energy and quality-aware scheduling."""

import pytest

from repro.core.balb import balb_central
from repro.core.bandwidth import (
    all_cameras_upload_mbps,
    frame_upload_mbps,
    min_view_cover,
    upload_plan_for_instance,
)
from repro.core.energy import (
    DEFAULT_ENERGY_MODELS,
    EnergyModel,
    assignment_energy_mj,
    energy_aware_assignment,
    energy_models_for,
)
from repro.core.problem import MVSInstance, SchedObject, camera_latency
from repro.core.quality import (
    qualities_from_boxes,
    quality_aware_central,
    view_quality,
)
from repro.core.redundancy import (
    balb_redundant,
    is_feasible_multi,
    multi_camera_latency,
    multi_system_latency,
)
from repro.devices.profiler import DeviceProfile


def profile(name="dev", t_full=100.0, t64=5.0, t128=10.0, b64=4, b128=2):
    return DeviceProfile(
        device_name=name,
        size_set=(64, 128),
        t_full=t_full,
        batch_latency_ms={64: t64, 128: t128},
        batch_limits={64: b64, 128: b128},
    )


def three_camera_instance(n_shared=6, n_exclusive=2):
    profiles = {
        0: profile("jetson-agx-xavier", 70.0, t64=2.0, t128=4.0),
        1: profile("jetson-tx2", 230.0, t64=8.0, t128=16.0),
        2: profile("jetson-nano", 510.0, t64=15.0, t128=30.0),
    }
    objects = []
    key = 0
    for _ in range(n_shared):
        objects.append(SchedObject(key=key, target_sizes={0: 64, 1: 64, 2: 64}))
        key += 1
    for _ in range(n_exclusive):
        objects.append(SchedObject(key=key, target_sizes={2: 128}))
        key += 1
    return MVSInstance(profiles=profiles, objects=tuple(objects))


class TestRedundancy:
    def test_k1_matches_plain_balb(self):
        inst = three_camera_instance()
        plain = balb_central(inst)
        redundant = balb_redundant(inst, k=1)
        assert {k: (v,) for k, v in plain.assignment.items()} == (
            redundant.assignment
        )

    def test_k2_adds_replicas_where_possible(self):
        inst = three_camera_instance()
        result = balb_redundant(inst, k=2)
        assert is_feasible_multi(inst, result.assignment)
        shared_keys = [o.key for o in inst.objects if len(o.coverage) > 1]
        for key in shared_keys:
            assert len(result.assignment[key]) == 2
        # Exclusive objects cannot be replicated.
        exclusive = [o.key for o in inst.objects if len(o.coverage) == 1]
        for key in exclusive:
            assert len(result.assignment[key]) == 1

    def test_replica_count(self):
        inst = three_camera_instance(n_shared=4, n_exclusive=3)
        result = balb_redundant(inst, k=2)
        assert result.replica_count == 4

    def test_redundancy_costs_latency(self):
        inst = three_camera_instance()
        single = balb_redundant(inst, k=1)
        double = balb_redundant(inst, k=2)
        assert multi_system_latency(
            inst, double.assignment, True
        ) >= multi_system_latency(inst, single.assignment, True)

    def test_vantage_diversity_prefers_far_camera(self):
        profiles = {
            0: profile("a", 100.0),
            1: profile("b", 100.0),
            2: profile("c", 100.0),
        }
        objects = (SchedObject(key=0, target_sizes={0: 64, 1: 64, 2: 64}),)
        inst = MVSInstance(profiles=profiles, objects=objects)
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (100.0, 0.0)}
        result = balb_redundant(inst, k=2, vantage_positions=positions)
        cams = result.assignment[0]
        # With identical load, the replica should pick the far vantage.
        assert 2 in cams

    def test_k_zero_raises(self):
        with pytest.raises(ValueError):
            balb_redundant(three_camera_instance(), k=0)

    def test_multi_latency_counts_replicas(self):
        inst = three_camera_instance(n_shared=2, n_exclusive=0)
        assignment = {0: (0, 1), 1: (0,)}
        lat0 = multi_camera_latency(inst, assignment, 0)
        lat1 = multi_camera_latency(inst, assignment, 1)
        assert lat0 == pytest.approx(2.0)  # one 64-batch with 2 objects
        assert lat1 == pytest.approx(8.0)

    def test_infeasible_multi_detected(self):
        inst = three_camera_instance(n_shared=1, n_exclusive=0)
        assert not is_feasible_multi(inst, {0: ()})
        assert not is_feasible_multi(inst, {0: (0, 0)})
        assert not is_feasible_multi(inst, {})


class TestBandwidth:
    def test_frame_upload_mbps(self):
        rate = frame_upload_mbps((1280, 704), fps=10.0, bits_per_pixel=0.15)
        assert rate == pytest.approx(1280 * 704 * 0.15 * 10 / 1e6)

    def test_min_cover_single_camera_suffices(self):
        coverage = {0: [0], 1: [0], 2: [0, 1]}
        plan = min_view_cover(coverage, {0: 1.0, 1: 1.0})
        assert plan.cameras == (0,)
        assert plan.covered_objects == frozenset({0, 1, 2})

    def test_min_cover_prefers_cheap_camera(self):
        coverage = {0: [0, 1]}
        plan = min_view_cover(coverage, {0: 10.0, 1: 1.0})
        assert plan.cameras == (1,)

    def test_min_cover_multiple_cameras(self):
        coverage = {0: [0], 1: [1], 2: [0, 1]}
        plan = min_view_cover(coverage, {0: 1.0, 1: 1.0})
        assert set(plan.cameras) == {0, 1}

    def test_uncoverable_objects_reported(self):
        coverage = {0: [0], 1: []}
        plan = min_view_cover(coverage, {0: 1.0})
        assert plan.uncovered_objects == frozenset({1})
        assert 0 in plan.covered_objects

    def test_instance_plan_cheaper_than_streaming_all(self):
        inst = three_camera_instance()
        frame_sizes = {0: (1280, 704), 1: (1280, 704), 2: (1280, 960)}
        plan = upload_plan_for_instance(inst, frame_sizes)
        assert plan.total_upload_mbps <= all_cameras_upload_mbps(frame_sizes)
        # All shared+exclusive objects are covered by the chosen views.
        assert len(plan.covered_objects) == len(inst.objects)

    def test_invalid_bitrate_params_raise(self):
        with pytest.raises(ValueError):
            frame_upload_mbps((100, 100), fps=0)


class TestEnergy:
    def test_energy_model_basics(self):
        model = EnergyModel(active_power_w=10.0)
        assert model.inference_energy_mj(100.0) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            model.inference_energy_mj(-1.0)
        with pytest.raises(ValueError):
            EnergyModel(active_power_w=0.0)

    def test_models_resolved_by_device_name(self):
        inst = three_camera_instance()
        models = energy_models_for(inst)
        assert models[0] is DEFAULT_ENERGY_MODELS["jetson-agx-xavier"]
        assert models[2] is DEFAULT_ENERGY_MODELS["jetson-nano"]

    def test_energy_aware_saves_energy_vs_balb(self):
        """With a loose deadline, the energy scheduler may place load on
        low-power devices and must never use more energy than BALB."""
        inst = three_camera_instance(n_shared=8, n_exclusive=0)
        balb = balb_central(inst, include_full_frame=False)
        energy_assignment = energy_aware_assignment(
            inst, latency_deadline_ms=10_000.0
        )
        e_balb = assignment_energy_mj(inst, balb.assignment)
        e_energy = assignment_energy_mj(inst, energy_assignment)
        assert e_energy <= e_balb + 1e-9

    def test_deadline_respected_when_feasible(self):
        inst = three_camera_instance(n_shared=8, n_exclusive=0)
        deadline = 40.0
        assignment = energy_aware_assignment(inst, latency_deadline_ms=deadline)
        for cam in inst.camera_ids:
            assert camera_latency(inst, assignment, cam) <= deadline + 1e-9

    def test_coverage_beats_impossible_deadline(self):
        inst = three_camera_instance(n_shared=0, n_exclusive=3)
        assignment = energy_aware_assignment(inst, latency_deadline_ms=0.001)
        assert set(assignment) == {o.key for o in inst.objects}

    def test_invalid_deadline_raises(self):
        with pytest.raises(ValueError):
            energy_aware_assignment(three_camera_instance(), 0.0)


class TestQuality:
    def test_view_quality_monotone_saturating(self):
        assert view_quality(0.0) == pytest.approx(0.0)
        assert view_quality(50) < view_quality(150) < view_quality(400)
        assert view_quality(10_000) <= 1.0

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            view_quality(-1.0)
        with pytest.raises(ValueError):
            view_quality(10.0, saturation_px=0.0)

    def test_qualities_from_boxes(self):
        q = qualities_from_boxes({(0, 1): 100.0, (0, 2): 300.0})
        assert q[(0, 2)] > q[(0, 1)]

    def test_alpha_zero_balances_latency(self):
        inst = three_camera_instance(n_shared=6, n_exclusive=0)
        qualities = {(o.key, c): 0.5 for o in inst.objects for c in o.coverage}
        result = quality_aware_central(inst, qualities, alpha=0.0)
        # Pure latency mode: nothing goes to the overloaded Nano.
        assert all(cam != 2 for cam in result.assignment.values())

    def test_alpha_one_chases_quality(self):
        inst = three_camera_instance(n_shared=6, n_exclusive=0)
        # Nano has the best view of everything.
        qualities = {}
        for obj in inst.objects:
            for cam in obj.coverage:
                qualities[(obj.key, cam)] = 0.95 if cam == 2 else 0.2
        result = quality_aware_central(inst, qualities, alpha=1.0)
        assert all(cam == 2 for cam in result.assignment.values())
        assert result.mean_quality == pytest.approx(0.95)

    def test_intermediate_alpha_trades_off(self):
        inst = three_camera_instance(n_shared=8, n_exclusive=0)
        qualities = {}
        for obj in inst.objects:
            for cam in obj.coverage:
                qualities[(obj.key, cam)] = 0.9 if cam == 2 else 0.4
        lat_first = quality_aware_central(inst, qualities, alpha=0.0)
        balanced = quality_aware_central(inst, qualities, alpha=0.5)
        quality_first = quality_aware_central(inst, qualities, alpha=1.0)
        assert (
            lat_first.mean_quality
            <= balanced.mean_quality
            <= quality_first.mean_quality
        )
        assert max(lat_first.camera_latencies.values()) <= max(
            quality_first.camera_latencies.values()
        )

    def test_invalid_alpha_raises(self):
        inst = three_camera_instance()
        with pytest.raises(ValueError):
            quality_aware_central(inst, {}, alpha=1.5)
