"""Tests for scheduling baselines, the exact solver and the NP-hardness
reduction."""

import numpy as np
import pytest

from repro.core.balb import balb_central
from repro.core.baselines import (
    full_frame_latencies,
    greedy_min_latency_assignment,
    independent_latencies,
    unordered_balb_assignment,
)
from repro.core.hardness import bins_fit, mvs_from_bin_packing
from repro.core.optimal import approximation_ratio, optimal_assignment
from repro.core.problem import (
    MVSInstance,
    SchedObject,
    is_feasible,
    system_latency,
)
from repro.devices.profiler import DeviceProfile


def profile(name="dev", t_full=100.0, t64=5.0, t128=10.0, b64=4, b128=2):
    return DeviceProfile(
        device_name=name,
        size_set=(64, 128),
        t_full=t_full,
        batch_latency_ms={64: t64, 128: t128},
        batch_limits={64: b64, 128: b128},
    )


def shared_instance(n=6):
    profiles = {0: profile("a"), 1: profile("b", t64=15.0, t128=30.0)}
    objects = tuple(
        SchedObject(key=j, target_sizes={0: 64, 1: 64}) for j in range(n)
    )
    return MVSInstance(profiles=profiles, objects=objects)


class TestBaselines:
    def test_full_frame_latencies(self):
        inst = shared_instance()
        assert full_frame_latencies(inst) == {0: 100.0, 1: 100.0}

    def test_independent_latencies_count_redundant_work(self):
        inst = shared_instance(n=4)
        ind = independent_latencies(inst)
        # Every camera tracks all 4 shared objects: one batch each.
        assert ind[0] == pytest.approx(5.0)
        assert ind[1] == pytest.approx(15.0)

    def test_independent_with_full_frame(self):
        inst = shared_instance(n=4)
        ind = independent_latencies(inst, include_full_frame=True)
        assert ind[0] == pytest.approx(105.0)

    def test_independent_at_least_balb(self):
        """Redundant tracking can never beat deduplicated tracking."""
        inst = shared_instance(n=10)
        ind_max = max(independent_latencies(inst).values())
        res = balb_central(inst, include_full_frame=False)
        balb_max = system_latency(inst, res.assignment)
        assert balb_max <= ind_max + 1e-9

    def test_ablation_assignments_feasible(self):
        inst = shared_instance(n=7)
        assert is_feasible(inst, greedy_min_latency_assignment(inst))
        assert is_feasible(inst, unordered_balb_assignment(inst))


class TestOptimal:
    def test_optimal_no_worse_than_balb(self):
        rng = np.random.default_rng(0)
        profiles = {0: profile("a"), 1: profile("b", t64=9.0, t128=17.0)}
        for trial in range(10):
            objects = []
            for j in range(7):
                cov = {0: 64} if rng.random() < 0.4 else {0: 64, 1: 128}
                objects.append(SchedObject(key=j, target_sizes=cov))
            inst = MVSInstance(profiles=profiles, objects=tuple(objects))
            res = balb_central(inst)
            balb_lat = system_latency(inst, res.assignment, True)
            opt_assign, opt_lat = optimal_assignment(inst)
            assert is_feasible(inst, opt_assign)
            assert opt_lat <= balb_lat + 1e-9
            assert system_latency(inst, opt_assign, True) == pytest.approx(opt_lat)

    def test_approximation_ratio_at_least_one(self):
        inst = shared_instance(n=6)
        assert approximation_ratio(inst) >= 1.0 - 1e-9

    def test_empty_instance(self):
        inst = MVSInstance(profiles={0: profile()}, objects=())
        assignment, latency = optimal_assignment(inst)
        assert assignment == {}
        assert latency == pytest.approx(100.0)

    def test_size_cap_enforced(self):
        objects = tuple(
            SchedObject(key=j, target_sizes={0: 64}) for j in range(20)
        )
        inst = MVSInstance(profiles={0: profile()}, objects=objects)
        with pytest.raises(ValueError):
            optimal_assignment(inst, max_objects=10)


class TestHardnessReduction:
    def test_reduction_matches_bin_packing_feasibility(self):
        items = [3.0, 3.0, 3.0, 2.0, 2.0, 2.0, 1.0]
        inst = mvs_from_bin_packing(items, n_bins=3)
        _, makespan = optimal_assignment(inst, include_full_frame=False)
        # Items fit into 3 bins of capacity C iff optimal makespan <= C.
        assert bins_fit(items, 3, makespan)
        assert not bins_fit(items, 3, makespan - 0.5)

    def test_reduction_structure(self):
        inst = mvs_from_bin_packing([1.0, 2.0], n_bins=2)
        assert len(inst.objects) == 2
        assert len(inst.profiles) == 2
        for obj in inst.objects:
            assert obj.coverage == frozenset({0, 1})
        for prof in inst.profiles.values():
            for size in prof.size_set:
                assert prof.batch_limit(size) == 1

    def test_identical_machines(self):
        inst = mvs_from_bin_packing([1.5, 2.5, 1.5], n_bins=2)
        profs = list(inst.profiles.values())
        assert all(
            p.batch_latency_ms == profs[0].batch_latency_ms for p in profs
        )

    def test_perfect_packing_instance(self):
        # 2 bins, items {2, 2, 2, 2}: makespan exactly 4.
        inst = mvs_from_bin_packing([2.0] * 4, n_bins=2)
        _, makespan = optimal_assignment(inst, include_full_frame=False)
        assert makespan == pytest.approx(4.0)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            mvs_from_bin_packing([], 2)
        with pytest.raises(ValueError):
            mvs_from_bin_packing([1.0], 0)
        with pytest.raises(ValueError):
            mvs_from_bin_packing([0.0], 2)

    def test_bins_fit_reference(self):
        assert bins_fit([5, 5, 5], 3, 5)
        assert not bins_fit([5, 5, 5], 2, 5)
        assert bins_fit([3, 3, 2, 2], 2, 5)
        assert not bins_fit([6], 1, 5)
