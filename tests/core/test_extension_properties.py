"""Property-based tests for the extension modules."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.core.balb import balb_central
from repro.core.bandwidth import min_view_cover
from repro.core.energy import assignment_energy_mj, energy_aware_assignment
from repro.core.problem import MVSInstance, SchedObject, is_feasible
from repro.core.quality import quality_aware_central
from repro.core.redundancy import (
    balb_redundant,
    is_feasible_multi,
    multi_system_latency,
)
from repro.devices.profiler import DeviceProfile


@st.composite
def instances(draw, max_cameras=4, max_objects=8):
    n_cams = draw(st.integers(1, max_cameras))
    sizes = (64, 128)
    profiles = {}
    for cam in range(n_cams):
        t64 = draw(st.floats(1.0, 40.0))
        profiles[cam] = DeviceProfile(
            device_name=draw(
                st.sampled_from(
                    ["jetson-nano", "jetson-tx2", "jetson-agx-xavier", "other"]
                )
            ),
            size_set=sizes,
            t_full=draw(st.floats(50.0, 600.0)),
            batch_latency_ms={64: t64, 128: draw(st.floats(t64, 90.0))},
            batch_limits={
                64: draw(st.integers(1, 8)),
                128: draw(st.integers(1, 4)),
            },
        )
    n_objs = draw(st.integers(0, max_objects))
    objects = []
    for j in range(n_objs):
        cover = draw(
            st.sets(st.integers(0, n_cams - 1), min_size=1, max_size=n_cams)
        )
        objects.append(
            SchedObject(
                key=j,
                target_sizes={c: draw(st.sampled_from(sizes)) for c in cover},
            )
        )
    return MVSInstance(profiles=profiles, objects=tuple(objects))


class TestRedundancyProperties:
    @settings(max_examples=60, deadline=None)
    @given(instances(), st.integers(1, 3))
    def test_always_feasible(self, inst, k):
        result = balb_redundant(inst, k=k)
        assert is_feasible_multi(inst, result.assignment) or not inst.objects

    @settings(max_examples=60, deadline=None)
    @given(instances(), st.integers(1, 3))
    def test_replicas_bounded_by_coverage(self, inst, k):
        result = balb_redundant(inst, k=k)
        for obj in inst.objects:
            cams = result.assignment[obj.key]
            assert 1 <= len(cams) <= min(k, len(obj.coverage))

    @settings(max_examples=40, deadline=None)
    @given(instances())
    def test_more_redundancy_never_cheaper(self, inst):
        k1 = balb_redundant(inst, k=1)
        k2 = balb_redundant(inst, k=2)
        lat1 = multi_system_latency(inst, k1.assignment, True)
        lat2 = multi_system_latency(inst, k2.assignment, True)
        assert lat2 >= lat1 - 1e-9


class TestEnergyProperties:
    @settings(max_examples=60, deadline=None)
    @given(instances(), st.floats(10.0, 500.0))
    def test_assignment_feasible(self, inst, deadline):
        if not inst.objects:
            return
        assignment = energy_aware_assignment(inst, deadline)
        assert is_feasible(inst, assignment)

    @settings(max_examples=40, deadline=None)
    @given(instances())
    def test_loose_deadline_never_uses_more_energy_than_balb(self, inst):
        if not inst.objects:
            return
        balb = balb_central(inst, include_full_frame=False)
        aware = energy_aware_assignment(inst, latency_deadline_ms=1e9)
        assert assignment_energy_mj(inst, aware) <= assignment_energy_mj(
            inst, balb.assignment
        ) + 1e-6


class TestQualityProperties:
    @settings(max_examples=60, deadline=None)
    @given(instances(), st.floats(0.0, 1.0))
    def test_assignment_feasible_for_any_alpha(self, inst, alpha):
        qualities = {
            (o.key, c): 0.5 for o in inst.objects for c in o.coverage
        }
        result = quality_aware_central(inst, qualities, alpha=alpha)
        assert is_feasible(inst, result.assignment) or not inst.objects

    @settings(max_examples=40, deadline=None)
    @given(instances())
    def test_quality_bounds(self, inst):
        rng = np.random.default_rng(0)
        qualities = {
            (o.key, c): float(rng.uniform(0, 1))
            for o in inst.objects
            for c in o.coverage
        }
        result = quality_aware_central(inst, qualities, alpha=0.5)
        assert 0.0 <= result.min_quality <= result.mean_quality <= 1.0


class TestSetCoverProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        st.dictionaries(
            keys=st.integers(0, 20),
            values=st.lists(st.integers(0, 5), max_size=4),
            max_size=15,
        )
    )
    def test_cover_is_valid(self, coverage):
        costs = {cam: 1.0 for cams in coverage.values() for cam in cams}
        plan = min_view_cover(coverage, costs)
        # Every coverable object is covered; uncoverable ones are reported.
        for key, cams in coverage.items():
            if cams:
                assert key in plan.covered_objects
            else:
                assert key in plan.uncovered_objects
        # Selected cameras are distinct and useful.
        assert len(set(plan.cameras)) == len(plan.cameras)
