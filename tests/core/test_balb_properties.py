"""Property-based invariants of the BALB central stage (ISSUE 1).

On randomized small MVS instances:

* every shared object lands on **exactly one** camera from its coverage
  set (Definition 2, single-assignment form);
* the greedy batch plan implied by the assignment never exceeds any
  device's batch limit ``B_i^s`` (the simulated GPU enforces this too);
* BALB's max-latency objective is sandwiched between the brute-force
  optimum from ``core.optimal`` and the no-coordination upper bound in
  which every camera inspects everything it sees (the worst single-camera
  latency under BALB-Ind);
* the algorithm is a pure function of its instance (rerunning it yields
  the identical result).
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.core.balb import balb_central
from repro.core.baselines import independent_latencies
from repro.core.optimal import optimal_assignment
from repro.core.problem import (
    MVSInstance,
    SchedObject,
    camera_size_counts,
    system_latency,
)
from repro.devices.gpu import GPUExecutor, greedy_plan
from repro.devices.profiler import DeviceProfile

SIZES = (64, 128, 256)


class ProfileBackedModel:
    """Adapts a DeviceProfile to the model interface the GPU layer needs."""

    def __init__(self, profile):
        self.profile = profile
        self.size_set = profile.size_set

    def batch_limit(self, size):
        return self.profile.batch_limit(size)

    def latency(self, size, batch):
        return self.profile.t_size(size)

    def full_frame_latency(self):
        return self.profile.t_full


@st.composite
def mvs_instances(draw, max_cameras=4, max_objects=8):
    """Random small MVS instances with heterogeneous devices."""
    n_cams = draw(st.integers(1, max_cameras))
    profiles = {}
    for cam in range(n_cams):
        lat = {}
        prev = 0.5
        for s in SIZES:
            prev = draw(st.floats(prev + 0.5, prev + 40.0))
            lat[s] = prev
        profiles[cam] = DeviceProfile(
            device_name=f"dev{cam}",
            size_set=SIZES,
            t_full=draw(st.floats(60.0, 500.0)),
            batch_latency_ms=lat,
            batch_limits={
                s: draw(st.integers(1, 6)) for s in SIZES
            },
        )
    n_objs = draw(st.integers(1, max_objects))
    objects = []
    for key in range(n_objs):
        coverage = draw(
            st.sets(st.integers(0, n_cams - 1), min_size=1, max_size=n_cams)
        )
        objects.append(
            SchedObject(
                key=key,
                target_sizes={
                    cam: draw(st.sampled_from(SIZES)) for cam in coverage
                },
            )
        )
    return MVSInstance(profiles=profiles, objects=tuple(objects))


class TestAssignmentInvariants:
    @settings(max_examples=100, deadline=None)
    @given(mvs_instances())
    def test_every_object_on_exactly_one_coverage_camera(self, inst):
        result = balb_central(inst)
        assert set(result.assignment) == {o.key for o in inst.objects}
        for obj in inst.objects:
            chosen = result.assignment[obj.key]
            assert isinstance(chosen, int)
            assert chosen in obj.coverage

    @settings(max_examples=100, deadline=None)
    @given(mvs_instances())
    def test_no_batch_exceeds_device_limit(self, inst):
        result = balb_central(inst)
        for cam in inst.camera_ids:
            profile = inst.profiles[cam]
            counts = camera_size_counts(inst, result.assignment, cam)
            model = ProfileBackedModel(profile)
            plan = greedy_plan(counts, model)
            for batch in plan:
                assert batch.count <= profile.batch_limit(batch.size)
            # The simulated GPU enforces the same invariant: a plan built
            # from a BALB assignment always executes without raising.
            GPUExecutor(model, 0.0, np.random.default_rng(0)).execute(plan)

    @settings(max_examples=100, deadline=None)
    @given(mvs_instances())
    def test_deterministic_given_instance(self, inst):
        a = balb_central(inst)
        b = balb_central(inst)
        assert a.assignment == b.assignment
        assert a.camera_latencies == b.camera_latencies
        assert a.priority_order == b.priority_order


class TestObjectiveBounds:
    @settings(max_examples=50, deadline=None)
    @given(mvs_instances(max_cameras=3, max_objects=6))
    def test_at_least_brute_force_optimum(self, inst):
        result = balb_central(inst)
        balb_lat = system_latency(
            inst, result.assignment, include_full_frame=True
        )
        _, opt_lat = optimal_assignment(inst, include_full_frame=True)
        assert balb_lat >= opt_lat - 1e-9

    @settings(max_examples=100, deadline=None)
    @given(mvs_instances())
    def test_never_worse_than_uncoordinated_worst_camera(self, inst):
        """BALB <= the worst single camera with no coordination (BALB-Ind).

        Each camera's BALB workload is a subset of everything it can see,
        and per-camera latency is monotone in the assigned set, so the
        balanced max can never exceed the uncoordinated max.
        """
        result = balb_central(inst)
        balb_lat = system_latency(
            inst, result.assignment, include_full_frame=True
        )
        ind = independent_latencies(inst, include_full_frame=True)
        assert balb_lat <= max(ind.values()) + 1e-9
