"""Tests for the from-scratch Hungarian algorithm, including a
property-based comparison against scipy's reference implementation."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp
import numpy as np
import pytest
import scipy.optimize

from repro.ml.hungarian import assignment_cost, hungarian


def reference_cost(cost):
    rows, cols = scipy.optimize.linear_sum_assignment(cost)
    return float(cost[rows, cols].sum())


class TestHungarianBasics:
    def test_identity_matrix(self):
        cost = np.array([[0, 1], [1, 0]], float)
        pairs = hungarian(cost)
        assert pairs == [(0, 0), (1, 1)]

    def test_known_instance(self):
        cost = np.array([[4, 1, 3], [2, 0, 5], [3, 2, 2]], float)
        pairs = hungarian(cost)
        assert assignment_cost(cost, pairs) == reference_cost(cost)

    def test_single_cell(self):
        assert hungarian(np.array([[7.0]])) == [(0, 0)]

    def test_empty_matrix(self):
        assert hungarian(np.zeros((0, 0))) == []

    def test_rectangular_wide(self):
        cost = np.array([[5, 1, 9, 2]], float)
        assert hungarian(cost) == [(0, 1)]

    def test_rectangular_tall(self):
        cost = np.array([[5], [1], [9]], float)
        assert hungarian(cost) == [(1, 0)]

    def test_negative_costs(self):
        cost = np.array([[-5, 0], [0, -5]], float)
        pairs = hungarian(cost)
        assert assignment_cost(cost, pairs) == pytest.approx(-10.0)

    def test_non_finite_raises(self):
        with pytest.raises(ValueError):
            hungarian(np.array([[1.0, np.inf], [0.0, 1.0]]))

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError):
            hungarian(np.array([1.0, 2.0]))

    def test_each_row_and_col_used_once(self):
        rng = np.random.default_rng(0)
        cost = rng.random((6, 9))
        pairs = hungarian(cost)
        rows = [r for r, _ in pairs]
        cols = [c for _, c in pairs]
        assert len(set(rows)) == len(rows) == 6
        assert len(set(cols)) == len(cols)


class TestHungarianVsScipy:
    @settings(max_examples=100, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=8),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    def test_optimal_cost_matches_scipy(self, cost):
        pairs = hungarian(cost)
        assert len(pairs) == min(cost.shape)
        assert assignment_cost(cost, pairs) == pytest.approx(
            reference_cost(cost), abs=1e-6
        )

    def test_large_random_instances(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            n, m = rng.integers(5, 40, 2)
            cost = rng.random((n, m)) * 1000
            pairs = hungarian(cost)
            assert assignment_cost(cost, pairs) == pytest.approx(
                reference_cost(cost), rel=1e-9
            )

    def test_integer_cost_matrix(self):
        cost = np.arange(12).reshape(3, 4)
        pairs = hungarian(cost)
        assert assignment_cost(cost, pairs) == reference_cost(cost)
