"""Tests for the CART-style decision tree classifier."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.decision_tree import DecisionTreeClassifier


class TestDecisionTree:
    def test_axis_aligned_split(self):
        x = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]] * 3)
        y = np.array([0.0, 0.0, 0.0, 1.0, 1.0, 1.0] * 3)
        model = DecisionTreeClassifier(min_samples_split=2, min_samples_leaf=1)
        model.fit(x, y)
        assert np.array_equal(model.predict(x), y.astype(int))

    def test_xor_needs_depth_two(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, (400, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(float)
        model = DecisionTreeClassifier(max_depth=4, min_samples_leaf=2).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_depth_one_cannot_solve_xor(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, (400, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(float)
        model = DecisionTreeClassifier(max_depth=1).fit(x, y)
        assert (model.predict(x) == y).mean() < 0.7

    def test_pure_node_is_leaf(self):
        x = np.random.default_rng(2).random((20, 2))
        y = np.ones(20)
        model = DecisionTreeClassifier().fit(x, y)
        assert model.depth() == 0
        assert np.all(model.predict_proba(x) == 1.0)

    def test_depth_respected(self):
        rng = np.random.default_rng(3)
        x = rng.random((300, 3))
        y = (rng.random(300) > 0.5).astype(float)
        model = DecisionTreeClassifier(max_depth=3, min_samples_leaf=1).fit(x, y)
        assert model.depth() <= 3

    def test_min_samples_leaf_respected(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        model = DecisionTreeClassifier(
            max_depth=5, min_samples_split=2, min_samples_leaf=3
        ).fit(x, y)
        # Can't split 4 samples into two leaves of >= 3: stays a leaf.
        assert model.depth() == 0

    def test_proba_bounds(self):
        rng = np.random.default_rng(4)
        x = rng.random((100, 2))
        y = (x[:, 0] > 0.5).astype(float)
        proba = DecisionTreeClassifier().fit(x, y).predict_proba(x)
        assert np.all(proba >= 0) and np.all(proba <= 1)

    def test_duplicate_feature_values_handled(self):
        x = np.array([[1.0], [1.0], [1.0], [2.0], [2.0], [2.0]] * 2)
        y = np.array([0.0, 0.0, 0.0, 1.0, 1.0, 1.0] * 2)
        model = DecisionTreeClassifier(min_samples_leaf=1, min_samples_split=2)
        model.fit(x, y)
        assert (model.predict(x) == y).mean() == 1.0

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict_proba(np.zeros((1, 2)))

    def test_non_binary_labels_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((2, 1)), np.array([0.0, 2.0]))
