"""Tests for RANSAC-wrapped regression."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.linear import LinearRegressor
from repro.ml.ransac import RANSACRegressor


def linear_with_outliers(rng, n=200, outlier_frac=0.3):
    x = rng.uniform(-10, 10, (n, 1))
    y = 2.0 * x + 1.0
    n_out = int(n * outlier_frac)
    idx = rng.choice(n, n_out, replace=False)
    y[idx] += rng.uniform(50, 100, (n_out, 1)) * rng.choice([-1, 1], (n_out, 1))
    return x, y, idx


class TestRANSAC:
    def test_robust_to_outliers(self):
        rng = np.random.default_rng(0)
        x, y, _ = linear_with_outliers(rng)
        ransac = RANSACRegressor(n_trials=80, residual_threshold=3.0, seed=1)
        ransac.fit(x, y)
        probes = np.array([[-5.0], [0.0], [5.0]])
        expected = 2.0 * probes + 1.0
        assert np.allclose(ransac.predict(probes), expected, atol=0.5)

    def test_plain_least_squares_corrupted_by_outliers(self):
        # Sanity check of the test setup: OLS is pulled off by the outliers.
        rng = np.random.default_rng(0)
        x, y, _ = linear_with_outliers(rng)
        ols = LinearRegressor().fit(x, y)
        probes = np.array([[-5.0], [0.0], [5.0]])
        expected = 2.0 * probes + 1.0
        assert not np.allclose(ols.predict(probes), expected, atol=0.5)

    def test_inlier_mask_identifies_outliers(self):
        rng = np.random.default_rng(2)
        x, y, outlier_idx = linear_with_outliers(rng)
        ransac = RANSACRegressor(n_trials=80, residual_threshold=3.0, seed=3)
        ransac.fit(x, y)
        assert ransac.inlier_mask_ is not None
        # The overwhelming majority of injected outliers must be excluded.
        flagged_out = (~ransac.inlier_mask_[outlier_idx]).mean()
        assert flagged_out > 0.9

    def test_clean_data_keeps_everything(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(0, 10, (50, 2))
        y = x @ np.array([[1.0], [2.0]])
        ransac = RANSACRegressor(residual_threshold=1.0).fit(x, y)
        assert ransac.inlier_mask_.mean() > 0.95

    def test_tiny_dataset_falls_back_to_plain_fit(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([[0.0], [2.0], [4.0]])
        ransac = RANSACRegressor(min_samples=10).fit(x, y)
        assert np.allclose(ransac.predict(x), y, atol=1e-6)
        assert ransac.inlier_mask_.all()

    def test_multi_output(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 5, (100, 1))
        y = np.hstack([x * 2, x * -3])
        ransac = RANSACRegressor().fit(x, y)
        pred = ransac.predict(np.array([[1.0]]))
        assert pred.shape == (1, 2)
        assert pred[0, 0] == pytest.approx(2.0, abs=0.2)

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(6)
        x, y, _ = linear_with_outliers(rng)
        a = RANSACRegressor(seed=42).fit(x, y).predict(np.array([[1.0]]))
        b = RANSACRegressor(seed=42).fit(x, y).predict(np.array([[1.0]]))
        assert np.array_equal(a, b)

    def test_invalid_trials_raise(self):
        with pytest.raises(ValueError):
            RANSACRegressor(n_trials=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            RANSACRegressor().predict(np.zeros((1, 1)))
