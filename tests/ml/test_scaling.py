"""Tests for feature standardization."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.scaling import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5, 3, (200, 4))
        scaled = StandardScaler().fit_transform(x)
        assert np.allclose(scaled.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1, atol=1e-9)

    def test_constant_feature_passthrough(self):
        x = np.hstack([np.ones((10, 1)) * 7, np.arange(10.0)[:, None]])
        scaled = StandardScaler().fit_transform(x)
        assert np.allclose(scaled[:, 0], 0.0)
        assert not np.any(np.isnan(scaled))

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 10, (50, 3))
        scaler = StandardScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_transform_new_data_uses_train_stats(self):
        train = np.array([[0.0], [10.0]])
        scaler = StandardScaler().fit(train)
        out = scaler.transform(np.array([[5.0]]))
        assert out[0, 0] == pytest.approx(0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((1, 2)))

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 2)))

    def test_1d_input_raises(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))
