"""Tests for KNN classification and regression."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.knn import KNNClassifier, KNNRegressor


def two_blobs(rng, n=60, sep=6.0):
    x0 = rng.normal(0, 1, (n, 2))
    x1 = rng.normal(sep, 1, (n, 2))
    x = np.vstack([x0, x1])
    y = np.array([0] * n + [1] * n, float)
    return x, y


class TestKNNClassifier:
    def test_separable_blobs(self):
        rng = np.random.default_rng(0)
        x, y = two_blobs(rng)
        model = KNNClassifier(k=5).fit(x, y)
        pred = model.predict(x)
        assert (pred == y).mean() > 0.97

    def test_k1_memorizes_training_set(self):
        rng = np.random.default_rng(1)
        x = rng.random((30, 3))
        y = (rng.random(30) > 0.5).astype(float)
        model = KNNClassifier(k=1).fit(x, y)
        assert np.array_equal(model.predict(x), y.astype(int))

    def test_proba_bounds(self):
        rng = np.random.default_rng(2)
        x, y = two_blobs(rng)
        proba = KNNClassifier(k=7).fit(x, y).predict_proba(x)
        assert np.all(proba >= 0) and np.all(proba <= 1)

    def test_weighted_voting(self):
        x = np.array([[0.0], [0.1], [10.0]])
        y = np.array([1.0, 1.0, 0.0])
        model = KNNClassifier(k=3, weighted=True).fit(x, y)
        assert model.predict(np.array([[0.05]]))[0] == 1

    def test_k_larger_than_dataset(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        proba = KNNClassifier(k=100).fit(x, y).predict_proba(np.array([[0.5]]))
        assert proba[0] == pytest.approx(0.5)

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            KNNClassifier(k=0)

    def test_non_binary_labels_raise(self):
        with pytest.raises(ValueError):
            KNNClassifier().fit(np.zeros((3, 1)), np.array([0.0, 1.0, 2.0]))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KNNClassifier().predict_proba(np.zeros((1, 2)))

    def test_feature_dim_mismatch_raises(self):
        model = KNNClassifier().fit(np.zeros((4, 3)), np.array([0, 1, 0, 1.0]))
        with pytest.raises(ValueError):
            model.predict_proba(np.zeros((1, 2)))


class TestKNNRegressor:
    def test_recovers_linear_function(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-5, 5, (500, 1))
        y = 3.0 * x + 1.0
        model = KNNRegressor(k=5).fit(x, y)
        queries = np.array([[0.0], [2.0], [-3.0]])
        pred = model.predict(queries)
        expected = 3.0 * queries + 1.0
        assert np.allclose(pred, expected, atol=0.3)

    def test_vector_targets(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(0, 10, (300, 2))
        y = np.hstack([x[:, :1] * 2, x[:, 1:] - 1])
        model = KNNRegressor(k=3).fit(x, y)
        pred = model.predict(x[:10])
        assert pred.shape == (10, 2)
        assert np.allclose(pred, y[:10], atol=1.0)

    def test_k1_returns_nearest_target(self):
        x = np.array([[0.0], [10.0]])
        y = np.array([[1.0], [2.0]])
        model = KNNRegressor(k=1).fit(x, y)
        assert model.predict(np.array([[0.4]]))[0, 0] == pytest.approx(1.0)

    def test_unweighted_mean(self):
        x = np.array([[0.0], [1.0], [100.0]])
        y = np.array([[0.0], [3.0], [300.0]])
        model = KNNRegressor(k=2, weighted=False).fit(x, y)
        assert model.predict(np.array([[0.5]]))[0, 0] == pytest.approx(1.5)

    def test_exact_training_point_weighted(self):
        x = np.array([[0.0], [5.0], [10.0]])
        y = np.array([[1.0], [2.0], [3.0]])
        model = KNNRegressor(k=3, weighted=True).fit(x, y)
        # Query exactly on a training point: weight 1/eps dominates.
        assert model.predict(np.array([[5.0]]))[0, 0] == pytest.approx(2.0, abs=1e-3)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KNNRegressor().predict(np.zeros((1, 2)))

    def test_nan_input_raises(self):
        with pytest.raises(ValueError):
            KNNRegressor().fit(np.array([[np.nan]]), np.array([[1.0]]))
