"""Tests for the primal linear SVM."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.svm import LinearSVM


class TestLinearSVM:
    def test_separable_data(self):
        rng = np.random.default_rng(0)
        x = np.vstack([rng.normal(-3, 1, (100, 2)), rng.normal(3, 1, (100, 2))])
        y = np.array([0.0] * 100 + [1.0] * 100)
        model = LinearSVM(n_iter=1500).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.97

    def test_decision_function_sign_matches_prediction(self):
        rng = np.random.default_rng(1)
        x = np.vstack([rng.normal(-2, 1, (50, 2)), rng.normal(2, 1, (50, 2))])
        y = np.array([0.0] * 50 + [1.0] * 50)
        model = LinearSVM().fit(x, y)
        margins = model.decision_function(x)
        preds = model.predict(x)
        assert np.array_equal(preds, (margins > 0).astype(int))

    def test_margin_direction(self):
        x = np.array([[-1.0], [1.0]] * 30)
        y = np.array([0.0, 1.0] * 30)
        model = LinearSVM(n_iter=1000).fit(x, y)
        assert model.decision_function(np.array([[5.0]]))[0] > 0
        assert model.decision_function(np.array([[-5.0]]))[0] < 0

    def test_proba_bounds(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 3, (60, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(float)
        proba = LinearSVM().fit(x, y).predict_proba(x)
        assert np.all(proba >= 0) and np.all(proba <= 1)

    def test_noisy_data_still_reasonable(self):
        rng = np.random.default_rng(3)
        x = np.vstack([rng.normal(-1, 1, (150, 2)), rng.normal(1, 1, (150, 2))])
        y = np.array([0.0] * 150 + [1.0] * 150)
        model = LinearSVM(c=1.0, n_iter=2000).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.80

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            LinearSVM(c=0)
        with pytest.raises(ValueError):
            LinearSVM(n_iter=0)

    def test_non_binary_labels_raise(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros((2, 1)), np.array([-1.0, 1.0]))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearSVM().decision_function(np.zeros((1, 2)))
