"""Tests for linear regression and logistic classification."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.linear import LinearRegressor, LogisticClassifier


class TestLinearRegressor:
    def test_exact_linear_recovery(self):
        rng = np.random.default_rng(0)
        x = rng.random((100, 3))
        coef = np.array([[2.0], [-1.0], [0.5]])
        y = x @ coef + 4.0
        model = LinearRegressor().fit(x, y)
        assert np.allclose(model.predict(x), y, atol=1e-6)

    def test_intercept_only(self):
        x = np.zeros((20, 2))
        y = np.full((20, 1), 7.0)
        model = LinearRegressor().fit(x, y)
        assert model.predict(np.zeros((1, 2)))[0, 0] == pytest.approx(7.0)

    def test_multi_output(self):
        rng = np.random.default_rng(1)
        x = rng.random((50, 2))
        y = np.hstack([x[:, :1] * 3, x[:, 1:] * -2 + 1])
        model = LinearRegressor().fit(x, y)
        pred = model.predict(x)
        assert pred.shape == (50, 2)
        assert np.allclose(pred, y, atol=1e-6)

    def test_collinear_features_stable(self):
        rng = np.random.default_rng(2)
        base = rng.random((40, 1))
        x = np.hstack([base, base * 2.0])  # perfectly collinear
        y = base * 5.0
        model = LinearRegressor(l2=1e-6).fit(x, y)
        assert np.allclose(model.predict(x), y, atol=1e-3)

    def test_1d_target_accepted(self):
        x = np.arange(10, dtype=float)[:, None]
        y = np.arange(10, dtype=float) * 2
        model = LinearRegressor().fit(x, y)
        assert model.predict(np.array([[4.0]]))[0, 0] == pytest.approx(8.0)

    def test_negative_l2_raises(self):
        with pytest.raises(ValueError):
            LinearRegressor(l2=-1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegressor().predict(np.zeros((1, 2)))

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            LinearRegressor().fit(np.zeros((0, 2)), np.zeros((0, 1)))


class TestLogisticClassifier:
    def test_separable_data(self):
        rng = np.random.default_rng(3)
        x = np.vstack([rng.normal(-3, 1, (80, 2)), rng.normal(3, 1, (80, 2))])
        y = np.array([0.0] * 80 + [1.0] * 80)
        model = LogisticClassifier().fit(x, y)
        assert (model.predict(x) == y).mean() > 0.97

    def test_proba_monotone_along_separating_axis(self):
        x = np.array([[-2.0], [-1.0], [1.0], [2.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        model = LogisticClassifier(n_iter=2000).fit(x, y)
        probes = model.predict_proba(np.array([[-3.0], [0.0], [3.0]]))
        assert probes[0] < probes[1] < probes[2]

    def test_proba_bounds(self):
        rng = np.random.default_rng(4)
        x = rng.normal(0, 5, (100, 3))
        y = (x[:, 0] > 0).astype(float)
        proba = LogisticClassifier().fit(x, y).predict_proba(x)
        assert np.all(proba >= 0) and np.all(proba <= 1)

    def test_balanced_prior_with_no_signal(self):
        rng = np.random.default_rng(5)
        x = np.zeros((100, 2))
        y = np.array([0.0, 1.0] * 50)
        proba = LogisticClassifier().fit(x, y).predict_proba(np.zeros((1, 2)))
        assert proba[0] == pytest.approx(0.5, abs=0.05)

    def test_non_binary_labels_raise(self):
        with pytest.raises(ValueError):
            LogisticClassifier().fit(np.zeros((2, 1)), np.array([1.0, 3.0]))

    def test_invalid_hyperparams_raise(self):
        with pytest.raises(ValueError):
            LogisticClassifier(lr=0)
        with pytest.raises(ValueError):
            LogisticClassifier(n_iter=0)
        with pytest.raises(ValueError):
            LogisticClassifier(l2=-0.1)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LogisticClassifier().predict_proba(np.zeros((1, 1)))

    def test_custom_threshold(self):
        x = np.array([[-1.0], [1.0]] * 20)
        y = np.array([0.0, 1.0] * 20)
        model = LogisticClassifier(n_iter=1000).fit(x, y)
        strict = model.predict(np.array([[0.2]]), threshold=0.95)
        lax = model.predict(np.array([[0.2]]), threshold=0.05)
        assert strict[0] == 0 and lax[0] == 1
