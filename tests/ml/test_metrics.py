"""Tests for classification/regression metrics and the chronological split."""

import numpy as np
import pytest

from repro.ml.metrics import (
    BinaryMetrics,
    binary_metrics,
    mean_absolute_error,
    train_test_split_indices,
)


class TestBinaryMetrics:
    def test_perfect_prediction(self):
        y = np.array([1, 0, 1, 0])
        m = binary_metrics(y, y)
        assert m.precision == 1.0 and m.recall == 1.0
        assert m.f1 == 1.0 and m.accuracy == 1.0

    def test_all_wrong(self):
        y = np.array([1, 0, 1, 0])
        m = binary_metrics(y, 1 - y)
        assert m.precision == 0.0 and m.recall == 0.0 and m.f1 == 0.0

    def test_counts(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        m = binary_metrics(y_true, y_pred)
        assert (m.tp, m.fp, m.fn, m.tn) == (2, 1, 1, 1)
        assert m.precision == pytest.approx(2 / 3)
        assert m.recall == pytest.approx(2 / 3)

    def test_no_positive_predictions(self):
        m = binary_metrics(np.array([1, 1]), np.array([0, 0]))
        assert m.precision == 0.0  # guarded division
        assert m.recall == 0.0

    def test_no_positive_labels(self):
        m = binary_metrics(np.array([0, 0]), np.array([0, 1]))
        assert m.recall == 0.0
        assert m.accuracy == 0.5

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            binary_metrics(np.array([1]), np.array([1, 0]))

    def test_zero_total_accuracy(self):
        m = BinaryMetrics(tp=0, fp=0, fn=0, tn=0)
        assert m.accuracy == 0.0


class TestMAE:
    def test_simple(self):
        assert mean_absolute_error(
            np.array([1.0, 2.0]), np.array([2.0, 4.0])
        ) == pytest.approx(1.5)

    def test_matrix_inputs(self):
        a = np.zeros((3, 4))
        b = np.full((3, 4), 2.0)
        assert mean_absolute_error(a, b) == pytest.approx(2.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.array([]), np.array([]))


class TestSplit:
    def test_half_split(self):
        tr, te = train_test_split_indices(10, 0.5)
        assert list(tr) == list(range(5))
        assert list(te) == list(range(5, 10))

    def test_chronological_order(self):
        tr, te = train_test_split_indices(100, 0.7)
        assert max(tr) < min(te)

    def test_extreme_fractions_keep_both_sides(self):
        tr, te = train_test_split_indices(5, 0.01)
        assert len(tr) >= 1 and len(te) >= 1
        tr, te = train_test_split_indices(5, 0.99)
        assert len(tr) >= 1 and len(te) >= 1

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            train_test_split_indices(1)
        with pytest.raises(ValueError):
            train_test_split_indices(10, 0.0)
        with pytest.raises(ValueError):
            train_test_split_indices(10, 1.0)
