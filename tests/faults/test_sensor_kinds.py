"""Degraded-sensor fault kinds: freeze, drift, flap, fade.

Covers the DSL clauses, the stochastic model's compilation (including
the prefix property that keeps pre-existing models byte-identical), the
per-frame schedule queries the pipeline consumes, and the
spec -> schedule -> clause round trip.
"""

import pytest

from repro.faults import (
    CHAOS_PRESETS,
    FaultKind,
    FaultModel,
    FaultSchedule,
    parse_fault_spec,
    render_clause,
    validate_fault_spec,
)
from repro.faults.schedule import (
    DRIFT_LAG_CAP,
    FADE_RAMP_FRAMES,
    FaultEvent,
)
from repro.faults.spec import _EVENT_KINDS


class TestClauses:
    def test_parse_sensor_clauses(self):
        sched = parse_fault_spec(
            "freeze:cam=1,at=5,for=10;drift:cam=2,rate=0.5,at=3;"
            "flap:cam=0,period=2,at=8,for=12;fade:cam=3,x=6,at=4,for=9"
        )
        kinds = sorted(e.kind.value for e in sched.events)
        assert kinds == [
            "camera_flap", "clock_drift", "quality_fade", "sensor_freeze",
        ]
        drift = next(e for e in sched.events
                     if e.kind is FaultKind.CLOCK_DRIFT)
        assert drift.magnitude == pytest.approx(0.5)
        flap = next(e for e in sched.events
                    if e.kind is FaultKind.CAMERA_FLAP)
        assert flap.magnitude == pytest.approx(2.0)
        fade = next(e for e in sched.events
                    if e.kind is FaultKind.QUALITY_FADE)
        assert fade.magnitude == pytest.approx(6.0)

    def test_flap_period_defaults_to_two(self):
        sched = parse_fault_spec("flap:cam=1,at=0,for=8")
        (e,) = sched.events
        assert e.magnitude == pytest.approx(2.0)

    @pytest.mark.parametrize("bad", [
        "freeze:p=0.5",          # freeze takes no magnitude key
        "drift:cam=1",           # drift needs rate=
        "fade:cam=1",            # fade needs x=
        "fade:cam=1,x=0.5",      # fade factor must be >= 1
        "flap:cam=1,period=0",   # flap period must be >= 1
        "drift:cam=1,rate=0",    # drift rate must be positive
    ])
    def test_malformed_sensor_clauses_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_fault_spec(bad)

    def test_unknown_clause_error_echoes_clause_and_lists_names(self):
        with pytest.raises(ValueError) as exc:
            parse_fault_spec("meteor:cam=1,at=3")
        message = str(exc.value)
        assert "'meteor'" in message
        assert "meteor:cam=1,at=3" in message
        # Every valid clause name is offered back to the user.
        for name in _EVENT_KINDS:
            assert name in message

    def test_rand_sensor_keys_build_model(self):
        model = parse_fault_spec(
            "rand:freeze=0.01,freeze_frames=8,drift=0.02,drift_slope=0.7,"
            "drift_frames=11,flap=0.03,flap_period=3,flap_frames=9,"
            "fade=0.04,fade_x=5,fade_frames=14"
        )
        assert isinstance(model, FaultModel)
        assert model.freeze_rate == 0.01
        assert model.mean_freeze_frames == 8
        assert model.clock_drift_rate == 0.02
        assert model.drift_slope == 0.7
        assert model.flap_rate == 0.03
        assert model.flap_period_frames == 3
        assert model.fade_rate == 0.04
        assert model.fade_factor == 5


class TestRoundTrip:
    """Spec -> schedule -> clause: every clause survives a round trip."""

    CLAUSES = [
        "crash:cam=1,at=12,for=10",
        "loss:p=0.1",
        "delay:ms=40,at=10,for=5",
        "gpu:cam=0,x=3,at=5,for=25",
        "partition:cam=2,at=8,for=6",
        "sched_crash:at=7,for=9",
        "freeze:cam=1,at=5,for=10",
        "drift:cam=2,rate=0.5,at=3,for=20",
        "flap:cam=0,period=2,at=8,for=12",
        "fade:cam=3,x=6,at=4,for=9",
    ]

    @pytest.mark.parametrize("clause", CLAUSES)
    def test_clause_round_trips_through_render(self, clause):
        (event,) = parse_fault_spec(clause).events
        rendered = render_clause(event)
        (again,) = parse_fault_spec(rendered).events
        assert again == event

    def test_every_dsl_name_maps_to_a_kind_and_back(self):
        # Property over the whole clause table: each name parses to its
        # FaultKind and re-renders to an equivalent clause.
        examples = {
            "crash": "crash:cam=0,at=1,for=4",
            "partition": "partition:cam=0,at=1,for=4",
            "loss": "loss:p=0.2,at=1,for=4",
            "corrupt": "corrupt:p=0.2,at=1,for=4",
            "dup": "dup:p=0.2,at=1,for=4",
            "reorder": "reorder:p=0.2,at=1,for=4",
            "delay": "delay:ms=25,at=1,for=4",
            "gpu": "gpu:cam=0,x=2,at=1,for=4",
            "sched_crash": "sched_crash:at=1,for=4",
            "sched_rejoin": "sched_rejoin:at=1",
            "sched_partition": "sched_partition:cam=0,at=1,for=4",
            "burst": "burst:cam=0,at=1,for=4",
            "freeze": "freeze:cam=0,at=1,for=4",
            "drift": "drift:cam=0,rate=0.4,at=1,for=4",
            "flap": "flap:cam=0,period=3,at=1,for=4",
            "fade": "fade:cam=0,x=3,at=1,for=4",
        }
        assert set(examples) == set(_EVENT_KINDS)
        for name, kind in sorted(_EVENT_KINDS.items()):
            (event,) = parse_fault_spec(examples[name]).events
            assert event.kind is kind
            (again,) = parse_fault_spec(render_clause(event)).events
            assert again == event


class TestScheduleQueries:
    def test_frozen_cameras_respect_the_window(self):
        sched = parse_fault_spec("freeze:cam=1,at=5,for=3")
        assert sched.frozen_cameras(4) == frozenset()
        assert sched.frozen_cameras(5) == frozenset({1})
        assert sched.frozen_cameras(7) == frozenset({1})
        assert sched.frozen_cameras(8) == frozenset()
        assert sched.has_sensor_faults

    def test_drift_lag_grows_and_caps(self):
        sched = parse_fault_spec("drift:cam=2,rate=0.5,at=10,for=40")
        assert sched.drift_lag(9, 2) == 0
        assert sched.drift_lag(10, 2) == 0  # floor(0.5 * 1)
        assert sched.drift_lag(13, 2) == 2  # floor(0.5 * 4)
        assert sched.drift_lag(49, 2) == DRIFT_LAG_CAP
        assert sched.max_drift_lag(60) == DRIFT_LAG_CAP
        assert sched.drift_lag(20, 0) == 0  # other cameras unaffected

    def test_flap_alternates_down_and_up(self):
        sched = parse_fault_spec("flap:cam=1,period=2,at=10,for=8")
        # The window opens with a leave: down for `period` frames, up
        # for `period` frames, repeating.
        phases = [1 in sched.at(f, [0, 1]).down for f in range(10, 18)]
        assert phases == [True, True, False, False, True, True, False, False]
        assert 1 not in sched.at(9, [0, 1]).down
        assert 1 not in sched.at(18, [0, 1]).down

    def test_fade_ramps_then_holds(self):
        sched = parse_fault_spec("fade:cam=0,x=5,at=10,for=30")
        assert sched.fade_factor(9, 0) == pytest.approx(1.0)
        ramp = [sched.fade_factor(10 + i, 0) for i in range(FADE_RAMP_FRAMES + 3)]
        assert ramp[0] < ramp[1] < ramp[FADE_RAMP_FRAMES]
        assert ramp[FADE_RAMP_FRAMES] == pytest.approx(5.0)
        assert ramp[-1] == pytest.approx(5.0)
        assert sched.fade_factor(41, 0) == pytest.approx(1.0)

    def test_at_snapshot_carries_sensor_fields(self):
        sched = parse_fault_spec(
            "freeze:cam=1,at=0,for=5;drift:cam=0,rate=1,at=0,for=5;"
            "fade:cam=2,x=4,at=0,for=5"
        )
        ff = sched.at(2, [0, 1, 2])
        assert ff.frozen == frozenset({1})
        assert ff.drift_lags == {0: 3}
        assert 2 in ff.fade and ff.fade[2] > 1.0
        assert ff.any_active


class TestModelCompilation:
    def test_sensor_rates_compile_to_sensor_events(self):
        model = FaultModel(
            freeze_rate=0.05, clock_drift_rate=0.05, flap_rate=0.05,
            fade_rate=0.05,
        )
        sched = model.compile([0, 1, 2], 200, seed=7)
        kinds = {e.kind for e in sched.events}
        assert FaultKind.SENSOR_FREEZE in kinds
        assert FaultKind.CLOCK_DRIFT in kinds
        assert FaultKind.CAMERA_FLAP in kinds
        assert FaultKind.QUALITY_FADE in kinds
        assert sched.has_sensor_faults

    def test_prefix_property_preserves_existing_models(self):
        # The sensor processes draw strictly after every pre-existing
        # process, so a model without sensor rates compiles to the exact
        # same schedule it did before the sensor kinds existed.
        base = FaultModel(crash_rate=0.02, loss_prob=0.05,
                          slowdown_rate=0.01, scheduler_crash_rate=0.01)
        with_sensors = FaultModel(
            crash_rate=0.02, loss_prob=0.05, slowdown_rate=0.01,
            scheduler_crash_rate=0.01, freeze_rate=0.05, flap_rate=0.05,
        )
        plain = base.compile([0, 1, 2], 150, seed=11)
        augmented = with_sensors.compile([0, 1, 2], 150, seed=11)
        sensor_kinds = {
            FaultKind.SENSOR_FREEZE, FaultKind.CLOCK_DRIFT,
            FaultKind.CAMERA_FLAP, FaultKind.QUALITY_FADE,
        }
        stripped = tuple(
            e for e in augmented.events if e.kind not in sensor_kinds
        )
        assert stripped == plain.events

    def test_null_model_stays_null(self):
        assert FaultModel().is_null
        assert not FaultModel(freeze_rate=0.01).is_null

    def test_fleet_preset_is_registered_and_sensor_heavy(self):
        model = CHAOS_PRESETS["fleet"]
        assert model.freeze_rate > 0
        assert model.clock_drift_rate > 0
        assert model.flap_rate > 0
        assert model.fade_rate > 0
        sched = model.compile([0, 1, 2, 3, 4], 100, seed=0)
        assert isinstance(sched, FaultSchedule)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.CLOCK_DRIFT, 0, duration=5, camera_id=0,
                       magnitude=0.0)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.QUALITY_FADE, 0, duration=5, camera_id=0,
                       magnitude=0.5)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.SENSOR_FREEZE, 0, duration=5)  # needs cam
