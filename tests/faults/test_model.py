"""FaultModel validation and deterministic compilation."""

import pytest

from repro.faults import FaultKind, FaultModel


def test_validation_rejects_bad_rates():
    with pytest.raises(ValueError):
        FaultModel(crash_rate=1.5)
    with pytest.raises(ValueError):
        FaultModel(loss_prob=-0.1)
    with pytest.raises(ValueError):
        FaultModel(mean_outage_frames=0.5)
    with pytest.raises(ValueError):
        FaultModel(slowdown_factor=0.0)
    with pytest.raises(ValueError):
        FaultModel(delay_ms=-1.0)


def test_null_model_compiles_empty():
    model = FaultModel()
    assert model.is_null
    assert len(model.compile([0, 1], 100, seed=3)) == 0


def test_same_seed_same_schedule():
    model = FaultModel(crash_rate=0.05, partition_rate=0.02,
                       slowdown_rate=0.03, delay_spike_rate=0.02,
                       loss_prob=0.1)
    a = model.compile([0, 1, 2], 200, seed=42)
    b = model.compile([0, 1, 2], 200, seed=42)
    assert a.events == b.events
    assert len(a) > 0


def test_different_seeds_differ():
    model = FaultModel(crash_rate=0.05)
    a = model.compile([0, 1, 2], 500, seed=1)
    b = model.compile([0, 1, 2], 500, seed=2)
    assert a.events != b.events


def test_camera_order_does_not_matter():
    model = FaultModel(crash_rate=0.05, slowdown_rate=0.02)
    a = model.compile([2, 0, 1], 200, seed=7)
    b = model.compile([0, 1, 2], 200, seed=7)
    assert a.events == b.events


def test_windows_stay_within_run_and_never_overlap_per_kind():
    model = FaultModel(crash_rate=0.1, mean_outage_frames=20.0)
    sched = model.compile([0], 100, seed=0)
    crashes = [e for e in sched.events
               if e.kind is FaultKind.CAMERA_CRASH]
    assert crashes, "a 10% rate over 100 frames should fire"
    last_end = 0
    for e in sorted(crashes, key=lambda e: e.start_frame):
        assert e.start_frame >= last_end
        assert e.duration is not None and e.duration >= 1
        assert e.end_frame <= 100
        last_end = e.end_frame


def test_steady_loss_becomes_fleet_wide_event():
    sched = FaultModel(loss_prob=0.2).compile([0, 1], 50, seed=0)
    assert len(sched) == 1
    (event,) = sched.events
    assert event.kind is FaultKind.LINK_LOSS
    assert event.camera_id is None
    assert event.magnitude == 0.2
    assert event.start_frame == 0 and event.end_frame == 50


def test_compile_rejects_empty_run():
    with pytest.raises(ValueError):
        FaultModel(crash_rate=0.1).compile([0], 0, seed=0)


def test_scheduler_rate_validation():
    with pytest.raises(ValueError):
        FaultModel(scheduler_crash_rate=1.5)
    with pytest.raises(ValueError):
        FaultModel(mean_scheduler_outage_frames=0.5)
    assert not FaultModel(scheduler_crash_rate=0.01).is_null


def test_scheduler_process_does_not_perturb_camera_draws():
    # Adding a scheduler process must leave the camera fault schedules of
    # a scheduler-free model exactly as they were before the kind existed.
    base = FaultModel(crash_rate=0.05, loss_prob=0.1)
    with_sched = FaultModel(crash_rate=0.05, loss_prob=0.1,
                            scheduler_crash_rate=0.02)
    a = base.compile([0, 1, 2], 300, seed=7)
    b = with_sched.compile([0, 1, 2], 300, seed=7)
    camera_events = [e for e in b.events
                     if e.kind is not FaultKind.SCHEDULER_CRASH]
    assert a.events == tuple(camera_events) or list(a.events) == camera_events


def test_scheduler_outages_compile_within_run():
    model = FaultModel(scheduler_crash_rate=0.05,
                       mean_scheduler_outage_frames=10.0)
    sched = model.compile([0], 200, seed=1)
    crashes = [e for e in sched.events
               if e.kind is FaultKind.SCHEDULER_CRASH]
    assert crashes
    for e in crashes:
        assert e.camera_id is None
        assert e.end_frame is not None and e.end_frame <= 200
