"""FaultEvent/FaultSchedule semantics: windows, queries, per-frame views."""

import pytest

from repro.faults import FaultEvent, FaultKind, FaultSchedule


def test_event_window_half_open():
    e = FaultEvent(FaultKind.CAMERA_CRASH, start_frame=5, duration=3,
                   camera_id=1)
    assert e.end_frame == 8
    assert not e.active_at(4)
    assert e.active_at(5)
    assert e.active_at(7)
    assert not e.active_at(8)


def test_event_open_ended_until_run_end():
    e = FaultEvent(FaultKind.CAMERA_CRASH, start_frame=5, camera_id=0)
    assert e.end_frame is None
    assert e.active_at(5)
    assert e.active_at(10_000)


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.CAMERA_CRASH, start_frame=-1, camera_id=0)
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.CAMERA_CRASH, start_frame=0, duration=0,
                   camera_id=0)
    # crash / partition / gpu need a camera
    for kind in (FaultKind.CAMERA_CRASH, FaultKind.PARTITION,
                 FaultKind.GPU_SLOWDOWN):
        with pytest.raises(ValueError):
            FaultEvent(kind, start_frame=0, magnitude=2.0)
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.LINK_LOSS, start_frame=0, magnitude=1.5)
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.LINK_DELAY, start_frame=0, magnitude=-1.0)
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.GPU_SLOWDOWN, start_frame=0, camera_id=0,
                   magnitude=0.0)


def test_fleet_wide_link_fault_applies_to_every_camera():
    e = FaultEvent(FaultKind.LINK_LOSS, start_frame=0, magnitude=0.5)
    assert e.applies_to(0) and e.applies_to(7)
    scoped = FaultEvent(FaultKind.LINK_LOSS, start_frame=0, camera_id=2,
                        magnitude=0.5)
    assert scoped.applies_to(2) and not scoped.applies_to(3)


def test_schedule_down_and_partitioned_queries():
    sched = FaultSchedule([
        FaultEvent(FaultKind.CAMERA_CRASH, 10, duration=5, camera_id=1),
        FaultEvent(FaultKind.PARTITION, 12, duration=4, camera_id=2),
    ])
    assert sched.down_cameras(9) == frozenset()
    assert sched.down_cameras(10) == frozenset({1})
    assert sched.partitioned_cameras(13) == frozenset({2})
    assert sched.down_cameras(15) == frozenset()


def test_loss_prob_composes_as_survival_product():
    sched = FaultSchedule([
        FaultEvent(FaultKind.LINK_LOSS, 0, duration=10, magnitude=0.5),
        FaultEvent(FaultKind.LINK_LOSS, 0, duration=10, camera_id=0,
                   magnitude=0.5),
    ])
    assert sched.loss_prob(0, 0) == pytest.approx(0.75)
    assert sched.loss_prob(0, 1) == pytest.approx(0.5)
    assert sched.loss_prob(10, 0) == 0.0


def test_gpu_factor_multiplies_and_delay_sums():
    sched = FaultSchedule([
        FaultEvent(FaultKind.GPU_SLOWDOWN, 0, duration=5, camera_id=0,
                   magnitude=2.0),
        FaultEvent(FaultKind.GPU_SLOWDOWN, 0, duration=5, camera_id=0,
                   magnitude=3.0),
        FaultEvent(FaultKind.LINK_DELAY, 0, duration=5, magnitude=10.0),
        FaultEvent(FaultKind.LINK_DELAY, 0, duration=5, camera_id=0,
                   magnitude=5.0),
    ])
    assert sched.gpu_factor(0, 0) == pytest.approx(6.0)
    assert sched.gpu_factor(0, 1) == 1.0
    assert sched.extra_delay_ms(0, 0) == pytest.approx(15.0)
    assert sched.extra_delay_ms(0, 1) == pytest.approx(10.0)


def test_at_partition_is_total_loss():
    sched = FaultSchedule([
        FaultEvent(FaultKind.PARTITION, 0, duration=3, camera_id=1),
    ])
    view = sched.at(0, [0, 1])
    assert view.partitioned == frozenset({1})
    assert view.down == frozenset()
    assert view.link_faults[1].loss_prob == 1.0
    assert 0 not in view.link_faults
    assert view.any_active


def test_at_restricts_to_known_cameras():
    sched = FaultSchedule([
        FaultEvent(FaultKind.CAMERA_CRASH, 0, duration=3, camera_id=99),
    ])
    view = sched.at(0, [0, 1])
    assert view.down == frozenset()


def test_started_at_reports_openings_once():
    e = FaultEvent(FaultKind.CAMERA_CRASH, 4, duration=3, camera_id=0)
    sched = FaultSchedule([e])
    assert sched.started_at(4) == (e,)
    assert sched.started_at(5) == ()


def test_empty_schedule_is_falsy_and_inert():
    sched = FaultSchedule()
    assert not sched
    assert len(sched) == 0
    view = sched.at(0, [0, 1, 2])
    assert not view.any_active


def test_scheduler_event_validation():
    # scheduler faults target the central node: no camera id allowed
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.SCHEDULER_CRASH, start_frame=0, camera_id=1)
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.SCHEDULER_REJOIN, start_frame=5, camera_id=0)
    # rejoin is instantaneous
    with pytest.raises(ValueError):
        FaultEvent(FaultKind.SCHEDULER_REJOIN, start_frame=5, duration=3)


def test_scheduler_down_window():
    sched = FaultSchedule([
        FaultEvent(FaultKind.SCHEDULER_CRASH, 10, duration=5),
    ])
    assert sched.has_scheduler_faults
    assert not sched.scheduler_down(9)
    assert sched.scheduler_down(10)
    assert sched.scheduler_down(14)
    assert not sched.scheduler_down(15)
    view = sched.at(12, [0, 1])
    assert view.scheduler_down and view.any_active
    assert not sched.at(20, [0, 1]).scheduler_down


def test_scheduler_open_crash_closed_by_rejoin():
    sched = FaultSchedule([
        FaultEvent(FaultKind.SCHEDULER_CRASH, 8),
        FaultEvent(FaultKind.SCHEDULER_REJOIN, 20),
    ])
    assert sched.scheduler_down(8)
    assert sched.scheduler_down(19)
    assert not sched.scheduler_down(20)
    assert not sched.scheduler_down(100)


def test_scheduler_open_crash_without_rejoin_lasts_forever():
    sched = FaultSchedule([FaultEvent(FaultKind.SCHEDULER_CRASH, 8)])
    assert sched.scheduler_down(10_000)


def test_camera_schedules_report_no_scheduler_faults():
    sched = FaultSchedule([
        FaultEvent(FaultKind.CAMERA_CRASH, 0, duration=2, camera_id=0),
    ])
    assert not sched.has_scheduler_faults
    assert not sched.scheduler_down(0)
    assert not sched.at(0, [0]).scheduler_down
