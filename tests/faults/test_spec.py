"""The --faults spec DSL, chaos presets, and resolve_faults."""

import pytest

from repro.faults import (
    CHAOS_PRESETS,
    FaultKind,
    FaultModel,
    FaultSchedule,
    parse_fault_spec,
    resolve_faults,
    validate_fault_spec,
)
from repro.faults.schedule import FaultEvent


def test_parse_scripted_clauses():
    sched = parse_fault_spec(
        "crash:cam=1,at=12,for=10;loss:p=0.1;delay:ms=40,at=10,for=5;"
        "gpu:cam=0,x=3,at=5,for=25;partition:cam=2,at=8,for=6"
    )
    assert isinstance(sched, FaultSchedule)
    kinds = sorted(e.kind.value for e in sched.events)
    assert kinds == ["camera_crash", "gpu_slowdown", "link_delay",
                     "link_loss", "partition"]
    crash = next(e for e in sched.events
                 if e.kind is FaultKind.CAMERA_CRASH)
    assert (crash.camera_id, crash.start_frame, crash.duration) == (1, 12, 10)
    loss = next(e for e in sched.events if e.kind is FaultKind.LINK_LOSS)
    assert loss.camera_id is None  # fleet-wide
    assert loss.start_frame == 0 and loss.duration is None


def test_parse_defaults_at_zero_for_open_ended():
    sched = parse_fault_spec("crash:cam=0")
    (e,) = sched.events
    assert e.start_frame == 0 and e.duration is None


def test_parse_rand_clause_builds_model():
    model = parse_fault_spec("rand:crash=0.01,outage=12,loss=0.05,gpu_x=2.5")
    assert isinstance(model, FaultModel)
    assert model.crash_rate == 0.01
    assert model.mean_outage_frames == 12
    assert model.loss_prob == 0.05
    assert model.slowdown_factor == 2.5


@pytest.mark.parametrize("bad", [
    "",
    "bogus:cam=1",
    "crash:cam=1,nope=3",
    "crash:cam",
    "loss:",                       # loss needs p=
    "delay:at=3",                  # delay needs ms=
    "gpu:cam=0",                   # gpu needs x=
    "crash:cam=0;rand:crash=0.1",  # rand must be the whole spec
    "crash:cam=x",
    "loss:p=1.5",
    "crash:cam=0,at=-1",
    "crash:cam=0,cam=1",
])
def test_validate_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        validate_fault_spec(bad)


def test_presets_are_valid_non_null_models():
    assert set(CHAOS_PRESETS) == {"light", "heavy", "cameras", "network",
                                  "gpu", "scheduler", "ingest", "wire",
                                  "fleet"}
    for name, model in CHAOS_PRESETS.items():
        assert isinstance(model, FaultModel), name
        assert not model.is_null, name


def test_resolve_disabled_forms_return_none():
    assert resolve_faults(None, [0], 10, seed=0) is None
    assert resolve_faults("", [0], 10, seed=0) is None
    assert resolve_faults("  ", [0], 10, seed=0) is None
    assert resolve_faults(FaultModel(), [0], 10, seed=0) is None
    assert resolve_faults(FaultSchedule(), [0], 10, seed=0) is None


def test_resolve_preset_name_and_spec_string():
    sched = resolve_faults("cameras", [0, 1, 2], 500, seed=0)
    assert isinstance(sched, FaultSchedule) and len(sched) > 0
    sched2 = resolve_faults("crash:cam=1,at=3,for=2", [0, 1], 10, seed=0)
    assert len(sched2) == 1


def test_resolve_passes_schedules_through_and_compiles_models():
    raw = FaultSchedule([
        FaultEvent(FaultKind.CAMERA_CRASH, 0, duration=2, camera_id=0),
    ])
    assert resolve_faults(raw, [0], 10, seed=0) is raw
    compiled = resolve_faults(
        FaultModel(crash_rate=0.2), [0, 1], 100, seed=0
    )
    assert isinstance(compiled, FaultSchedule)


def test_resolve_is_seed_deterministic():
    a = resolve_faults("heavy", [0, 1, 2], 300, seed=5)
    b = resolve_faults("heavy", [0, 1, 2], 300, seed=5)
    c = resolve_faults("heavy", [0, 1, 2], 300, seed=6)
    assert a.events == b.events
    assert a.events != c.events


def test_resolve_rejects_wrong_types():
    with pytest.raises(TypeError):
        resolve_faults(42, [0], 10, seed=0)


def test_parse_scheduler_clauses():
    sched = parse_fault_spec("sched_crash:at=12,for=15")
    (e,) = sched.events
    assert e.kind is FaultKind.SCHEDULER_CRASH
    assert e.camera_id is None
    assert (e.start_frame, e.duration) == (12, 15)
    paired = parse_fault_spec("sched_crash:at=12;sched_rejoin:at=30")
    kinds = [e.kind for e in paired.events]
    assert kinds == [FaultKind.SCHEDULER_CRASH, FaultKind.SCHEDULER_REJOIN]
    assert paired.scheduler_down(29) and not paired.scheduler_down(30)


def test_parse_scheduler_clause_rejections_name_the_clause():
    with pytest.raises(ValueError, match="sched_crash:cam=1"):
        parse_fault_spec("sched_crash:cam=1,at=5")
    with pytest.raises(ValueError, match="takes no for="):
        parse_fault_spec("sched_rejoin:at=5,for=3")


def test_rand_scheduler_keys_build_model():
    model = parse_fault_spec("rand:sched=0.01,sched_frames=20")
    assert isinstance(model, FaultModel)
    assert model.scheduler_crash_rate == 0.01
    assert model.mean_scheduler_outage_frames == 20.0


def test_scheduler_chaos_preset_exists():
    model = CHAOS_PRESETS["scheduler"]
    assert model.scheduler_crash_rate > 0
    compiled = model.compile([0, 1, 2], 500, seed=0)
    assert compiled.has_scheduler_faults
