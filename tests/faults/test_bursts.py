"""Ingest-burst plumbing through the fault DSL, model, and schedule.

The ``burst:`` clause, the ``rand:burst=`` model knobs and the
``ingest`` chaos preset all land as ``INGEST_BURST`` events; this module
pins their parsing, their window semantics (``ingest_bursting`` /
``burst_release_frame``) and the schedule-stability guarantee that
adding burst knobs to a model never reshuffles the other fault draws.
"""

import pytest

from repro.faults.model import FaultModel
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.faults.spec import (
    CHAOS_PRESETS,
    parse_fault_spec,
    spec_carries_ingest_bursts,
)
from repro.scenarios.bursts import (
    burst_sweep_specs,
    fleet_burst_spec,
    single_camera_burst_spec,
    staggered_burst_spec,
)


class TestBurstClauseParsing:
    def test_scoped_burst_clause(self):
        schedule = parse_fault_spec("burst:cam=1,at=10,for=6")
        assert isinstance(schedule, FaultSchedule)
        (event,) = schedule.events
        assert event.kind is FaultKind.INGEST_BURST
        assert event.camera_id == 1
        assert event.start_frame == 10 and event.duration == 6

    def test_fleet_wide_burst_clause(self):
        schedule = parse_fault_spec("burst:at=20,for=4")
        (event,) = schedule.events
        assert event.camera_id is None  # every camera stalls

    def test_burst_mixes_with_other_kinds(self):
        schedule = parse_fault_spec(
            "crash:cam=0,at=5,for=3;burst:cam=1,at=10,for=6"
        )
        kinds = [e.kind for e in schedule.events]
        assert FaultKind.CAMERA_CRASH in kinds
        assert FaultKind.INGEST_BURST in kinds

    def test_rand_burst_knobs(self):
        model = parse_fault_spec("rand:burst=0.03,burst_frames=5")
        assert isinstance(model, FaultModel)
        assert model.burst_rate == 0.03
        assert model.mean_burst_frames == 5.0

    def test_ingest_chaos_preset_carries_bursts(self):
        preset = CHAOS_PRESETS["ingest"]
        assert preset.burst_rate > 0.0
        assert spec_carries_ingest_bursts("ingest")


class TestSpecCarriesIngestBursts:
    @pytest.mark.parametrize(
        "faults",
        [
            "burst:cam=1,at=10,for=6",
            "rand:burst=0.03",
            "ingest",
            FaultModel(burst_rate=0.01),
            FaultSchedule(
                (FaultEvent(FaultKind.INGEST_BURST, start_frame=2, duration=3),)
            ),
        ],
    )
    def test_burst_carriers_detected(self, faults):
        assert spec_carries_ingest_bursts(faults)

    @pytest.mark.parametrize(
        "faults",
        [
            None,
            "",
            "crash:cam=0,at=5,for=3",
            "rand:crash=0.05",
            "light",
            FaultModel(crash_rate=0.1),
            FaultSchedule(()),
        ],
    )
    def test_burst_free_inputs_pass(self, faults):
        assert not spec_carries_ingest_bursts(faults)


class TestBurstWindows:
    def _schedule(self):
        return parse_fault_spec("burst:cam=1,at=4,for=3;burst:cam=2,at=8")

    def test_ingest_bursting_tracks_the_window(self):
        schedule = self._schedule()
        assert not schedule.ingest_bursting(3, 1)
        assert schedule.ingest_bursting(4, 1)
        assert schedule.ingest_bursting(6, 1)
        assert not schedule.ingest_bursting(7, 1)
        assert not schedule.ingest_bursting(5, 0)  # other cameras flow

    def test_release_frame_is_first_frame_after_the_window(self):
        schedule = self._schedule()
        for held in (4, 5, 6):
            assert schedule.burst_release_frame(held, 1, n_frames=20) == 7
        # Frames outside any window release immediately.
        assert schedule.burst_release_frame(2, 1, n_frames=20) == 2

    def test_open_ended_window_swallows_frames(self):
        schedule = self._schedule()
        assert schedule.burst_release_frame(9, 2, n_frames=20) is None

    def test_frame_faults_expose_bursting_cameras(self):
        schedule = self._schedule()
        faults = schedule.at(5, camera_ids=(0, 1, 2))
        assert faults.bursting == frozenset({1})
        assert schedule.at(1, camera_ids=(0, 1, 2)).bursting == frozenset()

    def test_has_ingest_bursts(self):
        assert self._schedule().has_ingest_bursts
        assert not FaultSchedule(()).has_ingest_bursts


class TestModelScheduleStability:
    def test_burst_knobs_drawn_after_a_cameras_other_kinds(self):
        """Bursts are drawn last per camera: switching them on leaves
        that camera's other fault windows exactly where they were."""
        quiet = FaultModel(crash_rate=0.2, loss_prob=0.1)
        bursty = FaultModel(
            crash_rate=0.2, loss_prob=0.1, burst_rate=0.2,
            mean_burst_frames=3.0,
        )
        a = quiet.compile((0,), n_frames=40, seed=7)
        b = bursty.compile((0,), n_frames=40, seed=7)
        non_burst = tuple(
            e for e in b.events if e.kind is not FaultKind.INGEST_BURST
        )
        assert non_burst == tuple(a.events)
        assert any(e.kind is FaultKind.INGEST_BURST for e in b.events)

    def test_compiled_bursts_are_seed_deterministic(self):
        model = FaultModel(burst_rate=0.2, mean_burst_frames=3.0)
        cams = (0, 1)
        assert (
            model.compile(cams, 30, seed=3).events
            == model.compile(cams, 30, seed=3).events
        )
        assert (
            model.compile(cams, 30, seed=3).events
            != model.compile(cams, 30, seed=4).events
        )


class TestCanonicalBurstWorkloads:
    def test_specs_parse_and_carry_bursts(self):
        for spec in burst_sweep_specs(horizon=5, total_frames=40):
            schedule = parse_fault_spec(spec)
            assert schedule.has_ingest_bursts
            assert spec_carries_ingest_bursts(spec)

    def test_single_camera_spec_targets_one_camera(self):
        schedule = parse_fault_spec(single_camera_burst_spec(5, 40, camera=2))
        (event,) = schedule.events
        assert event.camera_id == 2

    def test_fleet_spec_is_fleet_wide(self):
        schedule = parse_fault_spec(fleet_burst_spec(5, 40))
        (event,) = schedule.events
        assert event.camera_id is None

    def test_staggered_windows_never_stall_everyone_at_once(self):
        schedule = parse_fault_spec(staggered_burst_spec(5, 40))
        cams = (0, 1, 2)
        for frame in range(40):
            stalled = sum(
                1 for cam in cams if schedule.ingest_bursting(frame, cam)
            )
            assert stalled < len(cams)

    def test_windows_stay_inside_short_runs(self):
        for total in (4, 8, 12):
            for spec in burst_sweep_specs(horizon=5, total_frames=total):
                for event in parse_fault_spec(spec).events:
                    assert event.start_frame < total
                    assert event.end_frame is not None
                    # Strictly inside: held frames release before the end.
                    assert event.end_frame < total
