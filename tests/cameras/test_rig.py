"""Tests for the multi-camera rig."""

import math

import pytest

from repro.cameras.camera import Camera, CameraIntrinsics, CameraPose
from repro.cameras.rig import CameraRig
from repro.world.entities import ObjectClass, WorldObject


def cam(cid, x, y, yaw, max_range=60.0):
    return Camera(
        camera_id=cid,
        pose=CameraPose(x=x, y=y, z=6.0, yaw=yaw, pitch_down=0.3),
        intrinsics=CameraIntrinsics(focal_px=900, image_width=1280, image_height=704),
        max_range=max_range,
    )


def facing_pair():
    """Two cameras facing each other across the origin: overlap in the middle."""
    return CameraRig([
        cam(0, -40.0, 0.0, 0.0),
        cam(1, 40.0, 0.0, math.pi),
    ])


def car_at(x, y):
    return WorldObject.of_class(0, ObjectClass.CAR, x, y, 0.0, 10.0)


class TestRigBasics:
    def test_requires_cameras(self):
        with pytest.raises(ValueError):
            CameraRig([])

    def test_unique_ids_required(self):
        with pytest.raises(ValueError):
            CameraRig([cam(0, 0, 0, 0), cam(0, 10, 0, 0)])

    def test_lookup(self):
        rig = facing_pair()
        assert rig.camera(1).camera_id == 1
        with pytest.raises(KeyError):
            rig.camera(99)

    def test_len_and_iter(self):
        rig = facing_pair()
        assert len(rig) == 2
        assert [c.camera_id for c in rig] == [0, 1]


class TestCoverage:
    def test_middle_object_seen_by_both(self):
        rig = facing_pair()
        assert rig.coverage_set(car_at(0.0, 0.0)) == [0, 1]

    def test_near_object_seen_by_one(self):
        rig = facing_pair()
        # 15 m in front of camera 0 but 65 m from camera 1 (out of range).
        assert rig.coverage_set(car_at(-25.0, 0.0)) == [0]

    def test_unseen_object(self):
        rig = facing_pair()
        assert rig.coverage_set(car_at(0.0, 200.0)) == []

    def test_project_all_consistent_with_coverage(self):
        rig = facing_pair()
        objects = [car_at(0.0, 0.0), car_at(-25.0, 0.0)]
        # Unique ids required for dict keying.
        objects[1].object_id = 1
        proj = rig.project_all(objects)
        assert 0 in proj[0] and 0 in proj[1]
        assert 1 in proj[0] and 1 not in proj[1]

    def test_visible_counts(self):
        rig = facing_pair()
        objects = [car_at(0.0, 0.0)]
        counts = rig.visible_counts(objects)
        assert counts == {0: 1, 1: 1}


class TestOverlap:
    def test_fov_overlap_matrix_symmetric(self):
        rig = facing_pair()
        mat = rig.fov_overlap_matrix()
        assert mat.shape == (2, 2)
        assert mat[0, 1] == pytest.approx(mat[1, 0])
        assert mat[0, 1] > 0  # facing cameras do overlap

    def test_diagonal_is_own_area(self):
        rig = facing_pair()
        mat = rig.fov_overlap_matrix()
        poly_area = rig.camera(0).ground_fov_polygon().area
        assert mat[0, 0] == pytest.approx(poly_area)

    def test_overlap_fraction_in_unit_interval(self):
        rig = facing_pair()
        frac = rig.overlap_fraction(0, 1)
        assert 0.0 < frac <= 1.0

    def test_disjoint_cameras_zero_overlap(self):
        rig = CameraRig([
            cam(0, 0.0, 0.0, 0.0, max_range=30.0),
            cam(1, 200.0, 0.0, 0.0, max_range=30.0),
        ])
        assert rig.overlap_fraction(0, 1) == 0.0

    def test_cameras_seeing_ground_point(self):
        rig = facing_pair()
        assert rig.cameras_seeing_ground_point(0.0, 0.0) == [0, 1]
        assert rig.cameras_seeing_ground_point(-25.0, 0.0) == [0]
