"""Tests for the inter-object occlusion model."""

import math

import pytest

from repro.cameras.camera import Camera, CameraIntrinsics, CameraPose
from repro.cameras.occlusion import OcclusionModel, visible_fractions
from repro.world.entities import ObjectClass, WorldObject


def make_camera(x=0.0, y=0.0):
    return Camera(
        camera_id=0,
        pose=CameraPose(x=x, y=y, z=5.0, yaw=0.0, pitch_down=0.22),
        intrinsics=CameraIntrinsics(focal_px=950, image_width=1280, image_height=704),
        max_range=80.0,
    )


def vehicle(oid, x, y, cls=ObjectClass.BUS):
    return WorldObject.of_class(oid, cls, x, y, 0.0, 10.0)


class TestVisibleFractions:
    def test_single_object_fully_visible(self):
        cam = make_camera()
        fractions = visible_fractions(cam, [vehicle(0, 30, 0)])
        assert fractions[0] == pytest.approx(1.0)

    def test_bus_occludes_car_behind_it(self):
        cam = make_camera()
        bus = vehicle(0, 20, 0, cls=ObjectClass.BUS)
        car = vehicle(1, 40, 0, cls=ObjectClass.CAR)  # directly behind
        fractions = visible_fractions(cam, [bus, car])
        assert fractions[0] == pytest.approx(1.0)  # bus in front: clear
        assert fractions[1] < 0.7  # car largely hidden by the bus

    def test_laterally_separated_objects_clear(self):
        cam = make_camera()
        a = vehicle(0, 30, -8)
        b = vehicle(1, 30, 8)
        fractions = visible_fractions(cam, [a, b])
        assert fractions[0] == pytest.approx(1.0)
        assert fractions[1] == pytest.approx(1.0)

    def test_farther_object_never_occludes_closer(self):
        cam = make_camera()
        near = vehicle(0, 20, 0, cls=ObjectClass.CAR)
        far = vehicle(1, 50, 0, cls=ObjectClass.BUS)
        fractions = visible_fractions(cam, [near, far])
        assert fractions[0] == pytest.approx(1.0)

    def test_invisible_objects_not_reported(self):
        cam = make_camera()
        behind = vehicle(0, -30, 0)
        fractions = visible_fractions(cam, [behind])
        assert 0 not in fractions

    def test_fraction_bounded(self):
        cam = make_camera()
        objects = [vehicle(i, 15 + 5 * i, (i % 3 - 1) * 1.5) for i in range(8)]
        fractions = visible_fractions(cam, objects)
        for value in fractions.values():
            assert 0.0 <= value <= 1.0


class TestOcclusionModel:
    def test_threshold_behaviour(self):
        model = OcclusionModel(visibility_threshold=0.4)
        assert model.effectively_visible(0.5)
        assert not model.effectively_visible(0.3)

    def test_miss_multiplier_monotone(self):
        model = OcclusionModel(visibility_threshold=0.35)
        assert model.miss_multiplier(1.0) == 1.0
        assert model.miss_multiplier(0.7) > model.miss_multiplier(0.9)
        assert model.miss_multiplier(0.2) == float("inf")

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            OcclusionModel(visibility_threshold=1.0)
        with pytest.raises(ValueError):
            OcclusionModel(visibility_threshold=-0.1)

    def test_second_camera_recovers_occluded_object(self):
        """The paper's occlusion argument: a differently placed camera
        still sees what the first camera's view hides."""
        front_cam = make_camera(x=0.0, y=0.0)
        side_cam = Camera(
            camera_id=1,
            pose=CameraPose(x=30.0, y=-30.0, z=5.0,
                            yaw=math.pi / 2, pitch_down=0.22),
            intrinsics=CameraIntrinsics(
                focal_px=950, image_width=1280, image_height=704
            ),
            max_range=80.0,
        )
        bus = vehicle(0, 20, 0, cls=ObjectClass.BUS)
        car = vehicle(1, 40, 0, cls=ObjectClass.CAR)
        model = OcclusionModel(visibility_threshold=0.7)
        covering = model.occluded_coverage_set(
            [front_cam, side_cam], car, [bus, car]
        )
        assert 1 in covering  # the side camera sees past the bus
        assert 0 not in covering  # the front camera does not
