"""Tests for the pinhole camera model."""

import math

import pytest

from repro.cameras.camera import Camera, CameraIntrinsics, CameraPose
from repro.world.entities import ObjectClass, WorldObject


def make_camera(x=0.0, y=0.0, z=6.0, yaw=0.0, pitch=0.3, focal=950.0,
                w=1280, h=704, max_range=80.0):
    return Camera(
        camera_id=0,
        pose=CameraPose(x=x, y=y, z=z, yaw=yaw, pitch_down=pitch),
        intrinsics=CameraIntrinsics(focal_px=focal, image_width=w, image_height=h),
        max_range=max_range,
    )


def car_at(x, y, heading=0.0):
    return WorldObject.of_class(0, ObjectClass.CAR, x, y, heading, 10.0)


class TestIntrinsicsAndPose:
    def test_fov_from_focal(self):
        intr = CameraIntrinsics(focal_px=640.0, image_width=1280, image_height=704)
        assert intr.horizontal_fov == pytest.approx(math.pi / 2, rel=1e-6)

    def test_invalid_intrinsics_raise(self):
        with pytest.raises(ValueError):
            CameraIntrinsics(focal_px=0, image_width=100, image_height=100)
        with pytest.raises(ValueError):
            CameraIntrinsics(focal_px=100, image_width=0, image_height=100)

    def test_invalid_pose_raises(self):
        with pytest.raises(ValueError):
            CameraPose(0, 0, 0.0, 0, 0.3)  # on the ground
        with pytest.raises(ValueError):
            CameraPose(0, 0, 5.0, 0, math.pi / 2)  # pointing straight down


class TestProjection:
    def test_point_ahead_projects_near_center_column(self):
        cam = make_camera()
        uv = cam.project_point(30.0, 0.0, 0.0)
        assert uv is not None
        u, v = uv
        assert u == pytest.approx(640.0, abs=1.0)

    def test_point_behind_camera_is_none(self):
        cam = make_camera()
        assert cam.project_point(-10.0, 0.0, 0.0) is None

    def test_point_left_projects_left(self):
        cam = make_camera()
        u_left, _ = cam.project_point(30.0, 5.0, 0.0)
        u_right, _ = cam.project_point(30.0, -5.0, 0.0)
        # Camera x-axis (right) points toward negative world y for yaw=0.
        assert u_left < 640.0 < u_right

    def test_closer_ground_point_projects_lower(self):
        cam = make_camera()
        _, v_near = cam.project_point(10.0, 0.0, 0.0)
        _, v_far = cam.project_point(60.0, 0.0, 0.0)
        assert v_near > v_far  # image v grows downward

    def test_higher_point_projects_higher(self):
        cam = make_camera()
        _, v_base = cam.project_point(30.0, 0.0, 0.0)
        _, v_top = cam.project_point(30.0, 0.0, 2.0)
        assert v_top < v_base


class TestObjectProjection:
    def test_visible_object_produces_box(self):
        cam = make_camera()
        box = cam.project_object(car_at(30.0, 0.0))
        assert box is not None
        assert box.width > 0 and box.height > 0

    def test_closer_object_bigger_box(self):
        cam = make_camera()
        near = cam.project_object(car_at(15.0, 0.0))
        far = cam.project_object(car_at(60.0, 0.0))
        assert near is not None and far is not None
        assert near.area > far.area

    def test_object_out_of_range_invisible(self):
        cam = make_camera(max_range=40.0)
        assert cam.project_object(car_at(60.0, 0.0)) is None

    def test_object_behind_invisible(self):
        cam = make_camera()
        assert cam.project_object(car_at(-20.0, 0.0)) is None

    def test_object_far_off_axis_invisible(self):
        cam = make_camera()
        assert cam.project_object(car_at(10.0, 60.0)) is None

    def test_box_clipped_to_frame(self):
        cam = make_camera()
        for x in range(8, 70, 4):
            for y in (-20, -10, 0, 10, 20):
                box = cam.project_object(car_at(float(x), float(y)))
                if box is None:
                    continue
                assert box.x1 >= 0 and box.y1 >= 0
                assert box.x2 <= 1280 and box.y2 <= 704

    def test_orientation_changes_box_aspect(self):
        cam = make_camera()
        lengthwise = cam.project_object(car_at(30.0, 0.0, heading=0.0))
        sideways = cam.project_object(car_at(30.0, 0.0, heading=math.pi / 2))
        assert lengthwise is not None and sideways is not None
        assert lengthwise.width != pytest.approx(sideways.width, rel=0.05)

    def test_can_see_matches_project(self):
        cam = make_camera()
        obj = car_at(30.0, 0.0)
        assert cam.can_see(obj) == (cam.project_object(obj) is not None)


class TestGroundFoV:
    def test_sees_ground_point_ahead(self):
        cam = make_camera()
        assert cam.sees_ground_point(30.0, 0.0)

    def test_does_not_see_behind(self):
        cam = make_camera()
        assert not cam.sees_ground_point(-30.0, 0.0)

    def test_does_not_see_beyond_range(self):
        cam = make_camera(max_range=50.0)
        assert not cam.sees_ground_point(60.0, 0.0)

    def test_fov_polygon_contains_visible_ground_points(self):
        cam = make_camera()
        poly = cam.ground_fov_polygon()
        assert poly.contains(30.0, 0.0)
        assert not poly.contains(-10.0, 0.0)

    def test_yawed_camera_sees_rotated_area(self):
        cam = make_camera(yaw=math.pi / 2)
        assert cam.sees_ground_point(0.0, 30.0)
        assert not cam.sees_ground_point(30.0, 0.0)
