"""FailoverManager: election order, takeover/handback state machine."""

import pytest

from repro.net import LeaseConfig, SchedulerCheckpoint
from repro.net.link import DuplexChannel
from repro.runtime.failover import PRIMARY, FailoverManager


def make_manager(**kwargs):
    defaults = dict(
        camera_ids=[0, 1, 2],
        capacities={0: 1.0, 1: 3.0, 2: 2.0},
        lease=LeaseConfig(heartbeat_interval_frames=5, lease_misses=1),
        frame_dt_s=0.1,
    )
    defaults.update(kwargs)
    return FailoverManager(**defaults)


def checkpoint_at(frame):
    return SchedulerCheckpoint(
        frame_index=frame,
        priority_order=(1, 2, 0),
        assigned={0: (3,), 1: (4, 5)},
        association={7: ((0, 3), (1, 4)), 8: ((1, 5),)},
    )


def test_standby_order_is_capacity_then_id():
    mgr = make_manager()
    assert mgr.standby_order == (1, 2, 0)
    tie = make_manager(capacities={0: 1.0, 1: 1.0, 2: 1.0})
    assert tie.standby_order == (0, 1, 2)


def test_frame_dt_must_be_positive():
    with pytest.raises(ValueError):
        make_manager(frame_dt_s=0.0)


def test_healthy_frames_produce_no_transitions():
    mgr = make_manager()
    for frame in range(20):
        assert mgr.step(frame, False, [0, 1, 2]) is None
    assert mgr.primary_alive and mgr.leader_id == PRIMARY
    assert mgr.central_available


def test_takeover_within_one_heartbeat_interval():
    mgr = make_manager()
    mgr.record_replication(checkpoint_at(10), delivered=True)
    for frame in range(12):
        assert mgr.step(frame, False, [0, 1, 2]) is None
    assert mgr.step(12, True, [0, 1, 2]) is None  # crash frame: detection lag
    assert not mgr.central_available
    transitions = [
        (frame, mgr.step(frame, True, [0, 1, 2])) for frame in range(13, 20)
    ]
    fired = [(f, t) for f, t in transitions if t is not None]
    assert len(fired) == 1
    frame, takeover = fired[0]
    # first heartbeat-due frame strictly after the crash
    assert frame == 15
    assert frame - 12 <= mgr.lease.heartbeat_interval_frames
    assert takeover.kind == "takeover"
    assert takeover.leader_id == 1  # highest capacity
    assert takeover.replica_frame == 10
    # recovery = detection (3 frames at 100 ms) + modeled takeover cost
    assert takeover.recovery_ms == pytest.approx(
        300.0 + takeover.cost_ms
    )
    assert mgr.central_available and mgr.leader_id == 1


def test_handback_restores_primary_and_forgets_crash():
    mgr = make_manager()
    mgr.step(0, False, [0, 1, 2])
    mgr.step(2, True, [0, 1, 2])
    takeover = mgr.step(5, True, [0, 1, 2])
    assert takeover is not None and takeover.kind == "takeover"
    handback = mgr.step(9, False, [0, 1, 2])
    assert handback is not None and handback.kind == "handback"
    assert handback.leader_id == PRIMARY
    assert handback.recovery_ms is None  # central duty never lapsed
    assert mgr.primary_alive and mgr.leader_camera is None
    assert mgr.step(10, False, [0, 1, 2]) is None


def test_outage_shorter_than_detection_records_recovery_on_handback():
    mgr = make_manager()
    mgr.step(0, False, [0, 1, 2])
    mgr.step(1, True, [0, 1, 2])  # crash
    assert mgr.step(2, True, [0, 1, 2]) is None  # lease still live
    handback = mgr.step(3, False, [0, 1, 2])  # rejoin before takeover
    assert handback is not None and handback.kind == "handback"
    assert handback.recovery_ms == pytest.approx(200.0)  # 2 frames down
    assert handback.cost_ms == 0.0  # nothing to sync back


def test_dead_leader_reelects_immediately():
    mgr = make_manager()
    mgr.step(2, True, [0, 1, 2])
    takeover = mgr.step(5, True, [0, 1, 2])
    assert takeover.leader_id == 1
    # the leading standby dies: next-best standby takes over with no
    # extra detection lag (the fleet is already in failover mode)
    second = mgr.step(6, True, [0, 2])
    assert second is not None and second.kind == "takeover"
    assert second.leader_id == 2
    assert second.recovery_ms == pytest.approx(second.cost_ms)


def test_no_live_standby_leaves_central_down():
    mgr = make_manager()
    mgr.step(2, True, [0, 1, 2])
    assert mgr.step(5, True, []) is None
    assert not mgr.central_available


def test_replication_target_skips_leader():
    mgr = make_manager()
    assert mgr.replication_target([0, 1, 2]) == 1
    mgr.step(2, True, [0, 1, 2])
    mgr.step(5, True, [0, 1, 2])  # camera 1 now leads
    assert mgr.replication_target([0, 1, 2]) == 2
    assert mgr.replication_target([1]) is None


def test_record_replication_tracks_freshness():
    mgr = make_manager()
    mgr.record_replication(checkpoint_at(5), delivered=True)
    assert mgr.replica.frame_index == 5
    mgr.record_replication(checkpoint_at(10), delivered=False)
    assert mgr.replica.frame_index == 5  # stale replica kept
    assert mgr.replications == 1 and mgr.stale_replications == 1


def test_takeover_cost_includes_claim_broadcast_over_links():
    channels = {cam: DuplexChannel(seed=cam) for cam in (0, 1, 2)}
    with_links = make_manager(channels=channels)
    without = make_manager()
    for mgr in (with_links, without):
        mgr.record_replication(checkpoint_at(3), delivered=True)
        mgr.step(2, True, [0, 1, 2])
    t_links = with_links.step(5, True, [0, 1, 2])
    t_free = without.step(5, True, [0, 1, 2])
    assert t_links.cost_ms > t_free.cost_ms  # broadcast rides real links
    assert t_free.cost_ms >= with_links.lease.takeover_restore_ms


def test_checkpoint_payload_grows_with_state():
    small = checkpoint_at(0)
    big = SchedulerCheckpoint(
        frame_index=0,
        priority_order=tuple(range(10)),
        assigned={c: tuple(range(8)) for c in range(10)},
        association={g: tuple((c, g) for c in range(5)) for g in range(40)},
    )
    assert big.payload_bytes() > small.payload_bytes()
    assert big.n_global_objects == 40
