"""SoA/scalar bit-identity sweep over randomized small scenarios.

``sim_path="soa"`` routes every frame through the batched projection
cache; ``sim_path="scalar"`` keeps the per-object reference path as the
bit-identity oracle. This sweep drives both paths over
hypothesis-randomized run configurations (seed, policy, horizon shape,
occlusion, camera lag) and asserts the resulting ``RunResult`` — frame
records, span forest, and metrics snapshot — is byte-identical after
stripping wall-clock timings, which are the only fields allowed to
differ between the two engines.
"""

import dataclasses
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
from repro.scenarios.aic21 import get_scenario

POLICIES = ("full", "balb-ind", "balb-cen", "balb", "sp")


def canonical_bytes(result):
    """Pickle of a RunResult with wall-clock-dependent fields removed.

    Span start/duration and the ``frame_wall_ms`` metric measure host
    time and legitimately differ run to run; everything else must match
    bit for bit.
    """
    spans = [
        dataclasses.replace(s, start_ms=0.0, duration_ms=0.0)
        for s in result.spans
    ]
    metrics = [
        m
        for m in result.metrics
        if "frame_wall_ms" not in str(m.get("name", ""))
    ]
    return pickle.dumps((result.frames, spans, metrics))


@pytest.fixture(scope="module")
def trained_s1():
    scenario = get_scenario("S1", seed=0)
    config = PipelineConfig(
        horizon=5,
        n_horizons=1,
        warmup_s=20.0,
        train_duration_s=60.0,
        seed=0,
    )
    return scenario, train_models(scenario, config)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    policy=st.sampled_from(POLICIES),
    horizon=st.integers(min_value=2, max_value=4),
    n_horizons=st.integers(min_value=1, max_value=3),
    occlusion=st.booleans(),
    lag=st.integers(min_value=0, max_value=2),
)
def test_soa_matches_scalar_bitwise(
    trained_s1, seed, policy, horizon, n_horizons, occlusion, lag
):
    scenario, trained = trained_s1
    results = {}
    for sim_path in ("soa", "scalar"):
        config = PipelineConfig(
            policy=policy,
            horizon=horizon,
            n_horizons=n_horizons,
            warmup_s=5.0,
            train_duration_s=60.0,
            seed=seed,
            occlusion=occlusion,
            max_camera_lag_frames=lag,
            trace=True,
            sim_path=sim_path,
        )
        results[sim_path] = run_policy(scenario, policy, config, trained)
    assert canonical_bytes(results["soa"]) == canonical_bytes(
        results["scalar"]
    )


def test_scalar_path_is_selectable():
    config = PipelineConfig(sim_path="scalar")
    assert config.sim_path == "scalar"
    with pytest.raises(ValueError):
        PipelineConfig(sim_path="vectorized")
