"""The deterministic event kernel and the injectable-clock seam (ISSUE 6).

The kernel's ordering contract is load-bearing: frame arrivals must land
in the ingest queues before the frame's dispatch fires, and ties must
break FIFO so reruns replay identically. The injectable clock is what
lets the pipeline's ``frame_wall_ms`` measurement run on fake time in
tests (and keeps ``runtime/pipeline.py`` off the RL002 wall-clock
allowlist).
"""

import pytest

from repro.obs.trace import WALL_CLOCK, Clock, WallClock
from repro.runtime.events import EventQueue, SimulatedClock
from repro.runtime.pipeline import PipelineConfig, Pipeline, train_models
from repro.scenarios.aic21 import get_scenario


class TestSimulatedClock:
    def test_starts_at_given_time(self):
        assert SimulatedClock().now() == 0.0
        assert SimulatedClock(start=7.5).now() == 7.5

    def test_advance_moves_forward(self):
        clock = SimulatedClock()
        clock.advance_to(3.0)
        assert clock.now() == 3.0
        clock.advance_to(3.0)  # standing still is allowed
        assert clock.now() == 3.0

    def test_advance_backwards_rejected(self):
        clock = SimulatedClock(start=5.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(4.999)

    def test_satisfies_clock_protocol(self):
        assert isinstance(SimulatedClock(), Clock)
        assert isinstance(WallClock(), Clock)
        assert isinstance(WALL_CLOCK, Clock)


class TestEventOrdering:
    def test_dispatch_in_time_order(self):
        kernel = EventQueue()
        fired = []
        kernel.schedule_at(2.0, lambda: fired.append("late"))
        kernel.schedule_at(1.0, lambda: fired.append("early"))
        kernel.schedule_at(1.5, lambda: fired.append("middle"))
        assert kernel.run_until_idle() == 3
        assert fired == ["early", "middle", "late"]

    def test_lower_priority_fires_first_at_equal_time(self):
        """Arrivals (priority 0) precede dispatches (priority 1)."""
        kernel = EventQueue()
        fired = []
        kernel.schedule_at(1.0, lambda: fired.append("dispatch"), priority=1)
        kernel.schedule_at(1.0, lambda: fired.append("arrival"), priority=0)
        kernel.run_until_idle()
        assert fired == ["arrival", "dispatch"]

    def test_equal_time_and_priority_is_fifo(self):
        kernel = EventQueue()
        fired = []
        for i in range(10):
            kernel.schedule_at(1.0, lambda i=i: fired.append(i), priority=0)
        kernel.run_until_idle()
        assert fired == list(range(10))

    def test_clock_tracks_dispatched_event_times(self):
        kernel = EventQueue()
        seen = []
        for when in (0.5, 1.25, 4.0):
            kernel.schedule_at(when, lambda: seen.append(kernel.clock.now()))
        kernel.run_until_idle()
        assert seen == [0.5, 1.25, 4.0]

    def test_events_may_schedule_further_events(self):
        kernel = EventQueue()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                kernel.schedule_after(1.0, lambda: chain(n + 1))

        kernel.schedule_at(0.0, lambda: chain(0))
        assert kernel.run_until_idle() == 4
        assert fired == [0, 1, 2, 3]
        assert kernel.clock.now() == 3.0


class TestSchedulingErrors:
    def test_scheduling_in_the_past_rejected(self):
        kernel = EventQueue()
        kernel.schedule_at(2.0, lambda: None)
        kernel.run_until_idle()
        with pytest.raises(ValueError, match="cannot schedule at"):
            kernel.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventQueue().schedule_after(-0.1, lambda: None)

    def test_max_events_bounds_runaway_loops(self):
        kernel = EventQueue()

        def forever():
            kernel.schedule_after(1.0, forever)

        kernel.schedule_at(0.0, forever)
        with pytest.raises(RuntimeError, match="max_events"):
            kernel.run_until_idle(max_events=50)

    def test_counters(self):
        kernel = EventQueue()
        kernel.schedule_at(1.0, lambda: None)
        kernel.schedule_at(2.0, lambda: None)
        assert kernel.pending == 2 and kernel.dispatched == 0
        kernel.run_until_idle()
        assert kernel.pending == 0 and kernel.dispatched == 2


class TestKernelRng:
    def test_unseeded_kernel_refuses_rng(self):
        with pytest.raises(ValueError, match="seed"):
            EventQueue().rng

    def test_seeded_kernels_draw_identically(self):
        a, b = EventQueue(seed=42), EventQueue(seed=42)
        assert list(a.rng.random(8)) == list(b.rng.random(8))


# -- The injectable clock in the pipeline (the RL002 satellite fix) --------


class TickingClock:
    """A fake wall clock: each ``now()`` is 1 ms after the previous."""

    def __init__(self):
        self.calls = 0

    def now(self) -> float:
        self.calls += 1
        return self.calls * 1e-3


class TestInjectablePipelineClock:
    @pytest.fixture(scope="class")
    def small_setup(self):
        scenario = get_scenario("S2", seed=0)
        config = PipelineConfig(
            policy="balb", horizon=3, n_horizons=2, warmup_s=5.0,
            train_duration_s=10.0, seed=0,
        )
        return scenario, config, train_models(scenario, config)

    def _wall_stats(self, result):
        return [m for m in result.metrics if m["name"] == "frame_wall_ms"]

    def test_fake_clock_makes_frame_wall_ms_deterministic(self, small_setup):
        scenario, config, trained = small_setup
        runs = [
            Pipeline(scenario, config, trained, clock=TickingClock()).run()
            for _ in range(2)
        ]
        stats = [self._wall_stats(r) for r in runs]
        assert stats[0]  # the histogram is actually exported
        assert stats[0] == stats[1]
        # Each frame spans exactly one start/stop pair of the fake clock,
        # so every observation is exactly 1 ms.
        (hist,) = stats[0]
        assert hist["max"] == pytest.approx(1.0)
        assert hist["min"] == pytest.approx(1.0)

    def test_default_clock_is_the_wall_clock(self, small_setup):
        scenario, config, trained = small_setup
        pipe = Pipeline(scenario, config, trained)
        assert pipe.clock is WALL_CLOCK

    def test_clock_does_not_perturb_simulation(self, small_setup):
        """Fake vs wall clock: identical frames, identical recall."""
        scenario, config, trained = small_setup
        fake = Pipeline(scenario, config, trained, clock=TickingClock()).run()
        wall = Pipeline(scenario, config, trained).run()
        assert fake.frames == wall.frames
