"""Tests for run metrics."""

import pytest

from repro.runtime.metrics import FrameRecord, RunResult, speedup_vs


def record(idx, inference, visible, detected, key=False, overheads=None):
    return FrameRecord(
        frame_index=idx,
        is_key_frame=key,
        inference_ms=inference,
        visible_gt=frozenset(visible),
        detected_gt=frozenset(detected),
        overheads_ms=overheads or {},
    )


class TestRecall:
    def test_perfect_recall(self):
        result = RunResult("balb", "S1", horizon=2)
        result.add(record(0, {0: 1.0}, {1, 2}, {1, 2}))
        result.add(record(1, {0: 1.0}, {3}, {3}))
        assert result.object_recall() == 1.0

    def test_partial_recall(self):
        result = RunResult("balb", "S1", horizon=2)
        result.add(record(0, {0: 1.0}, {1, 2}, {1}))
        result.add(record(1, {0: 1.0}, {1, 2}, {2}))
        assert result.object_recall() == pytest.approx(0.5)

    def test_detections_outside_visible_ignored(self):
        result = RunResult("balb", "S1", horizon=1)
        result.add(record(0, {0: 1.0}, {1}, {1, 99}))
        assert result.object_recall() == 1.0

    def test_empty_frames_recall_one(self):
        result = RunResult("balb", "S1", horizon=1)
        result.add(record(0, {0: 1.0}, set(), set()))
        assert result.object_recall() == 1.0

    def test_recall_over_time_windows(self):
        result = RunResult("balb", "S1", horizon=2)
        result.add(record(0, {}, {1}, {1}))
        result.add(record(1, {}, {1}, set()))
        result.add(record(2, {}, {1}, {1}))
        trace = result.recall_over_time(window=2)
        assert trace == [pytest.approx(0.5), pytest.approx(1.0)]


class TestLatency:
    def test_slowest_camera_per_horizon(self):
        result = RunResult("balb", "S1", horizon=2)
        # Horizon 1: cam0 mean 10, cam1 mean 20 -> 20.
        result.add(record(0, {0: 10.0, 1: 30.0}, set(), set(), key=True))
        result.add(record(1, {0: 10.0, 1: 10.0}, set(), set()))
        # Horizon 2: cam0 mean 50, cam1 mean 5 -> 50.
        result.add(record(2, {0: 60.0, 1: 5.0}, set(), set(), key=True))
        result.add(record(3, {0: 40.0, 1: 5.0}, set(), set()))
        assert result.mean_slowest_latency() == pytest.approx((20 + 50) / 2)

    def test_key_frames_averaged_into_horizon(self):
        result = RunResult("balb", "S1", horizon=2)
        result.add(record(0, {0: 100.0}, set(), set(), key=True))
        result.add(record(1, {0: 0.0}, set(), set()))
        assert result.mean_slowest_latency() == pytest.approx(50.0)

    def test_per_camera_means(self):
        result = RunResult("balb", "S1", horizon=2)
        result.add(record(0, {0: 10.0, 1: 20.0}, set(), set()))
        result.add(record(1, {0: 30.0, 1: 40.0}, set(), set()))
        means = result.per_camera_mean_latency()
        assert means[0] == pytest.approx(20.0)
        assert means[1] == pytest.approx(30.0)

    def test_empty_result(self):
        assert RunResult("balb", "S1", horizon=5).mean_slowest_latency() == 0.0

    def test_speedup_vs(self):
        slow = RunResult("full", "S1", horizon=1)
        slow.add(record(0, {0: 100.0}, set(), set()))
        fast = RunResult("balb", "S1", horizon=1)
        fast.add(record(0, {0: 25.0}, set(), set()))
        assert speedup_vs(slow, fast) == pytest.approx(4.0)


class TestOverheads:
    def test_breakdown_means_and_total(self):
        result = RunResult("balb", "S1", horizon=2)
        result.add(record(0, {}, set(), set(), overheads={"tracking": 10.0}))
        result.add(
            record(
                1, {}, set(), set(),
                overheads={"tracking": 20.0, "batching": 4.0},
            )
        )
        breakdown = result.overhead_breakdown()
        assert breakdown["tracking"] == pytest.approx(15.0)
        assert breakdown["batching"] == pytest.approx(2.0)  # missing -> 0
        assert breakdown["total"] == pytest.approx(17.0)


class TestFaultEdgeCases:
    """RunResult edge cases around coverage loss and degenerate runs."""

    def lossy_record(self, idx, visible, detected, lost):
        return FrameRecord(
            frame_index=idx,
            is_key_frame=False,
            inference_ms={},
            visible_gt=frozenset(visible),
            detected_gt=frozenset(detected),
            coverage_lost=frozenset(lost),
        )

    def test_count_lost_as_missed_widens_denominator(self):
        result = RunResult("balb", "S1", horizon=1)
        result.add(self.lossy_record(0, {1, 2}, {1, 2}, {3, 4}))
        assert result.object_recall() == 1.0
        assert result.object_recall(count_lost_as_missed=True) == (
            pytest.approx(0.5)
        )

    def test_count_lost_as_missed_equals_plain_without_loss(self):
        result = RunResult("balb", "S1", horizon=1)
        result.add(self.lossy_record(0, {1, 2}, {1}, set()))
        assert result.object_recall() == result.object_recall(
            count_lost_as_missed=True
        )

    def test_all_coverage_lost_naive_recall_zero(self):
        result = RunResult("balb", "S1", horizon=1)
        result.add(self.lossy_record(0, set(), set(), {1, 2, 3}))
        assert result.object_recall() == 1.0  # nothing schedulable missed
        assert result.object_recall(count_lost_as_missed=True) == 0.0
        assert result.coverage_loss() == 1.0

    def test_coverage_loss_on_zero_frame_run(self):
        result = RunResult("balb", "S1", horizon=1)
        assert result.n_frames == 0
        assert result.coverage_loss() == 0.0
        assert result.object_recall() == 1.0
        assert result.object_recall(count_lost_as_missed=True) == 1.0
        assert result.mean_slowest_latency() == 0.0

    def test_coverage_loss_mixed_fraction(self):
        result = RunResult("balb", "S1", horizon=1)
        result.add(self.lossy_record(0, {1, 2, 3}, {1, 2, 3}, {4}))
        assert result.coverage_loss() == pytest.approx(0.25)

    def test_recall_over_time_window_larger_than_run(self):
        result = RunResult("balb", "S1", horizon=2)
        result.add(record(0, {}, {1}, {1}))
        result.add(record(1, {}, {1}, set()))
        trace = result.recall_over_time(window=100)
        assert trace == [pytest.approx(0.5)]  # one window covering it all

    def test_recall_over_time_on_empty_run(self):
        result = RunResult("balb", "S1", horizon=2)
        assert result.recall_over_time(window=10) == []
