"""Tests for the end-to-end pipeline configuration and mechanics."""

import pytest

from repro.runtime.pipeline import (
    POLICIES,
    Pipeline,
    PipelineConfig,
    run_policy,
    train_models,
)
from repro.scenarios.aic21 import scenario_s2


def small_config(policy="balb", **kwargs):
    defaults = dict(
        policy=policy,
        horizon=5,
        n_horizons=4,
        warmup_s=10.0,
        train_duration_s=30.0,
        seed=0,
    )
    defaults.update(kwargs)
    return PipelineConfig(**defaults)


class TestPipelineConfig:
    def test_all_policies_accepted(self):
        for policy in POLICIES:
            PipelineConfig(policy=policy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(policy="magic")

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(horizon=0)
        with pytest.raises(ValueError):
            PipelineConfig(n_horizons=0)

    def test_negative_gpu_jitter_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(gpu_jitter=-0.01)
        PipelineConfig(gpu_jitter=0.0)  # disabling jitter is fine

    def test_invalid_link_knobs_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(link_timeout_ms=-1.0)
        with pytest.raises(ValueError):
            PipelineConfig(link_max_retries=0)
        with pytest.raises(ValueError):
            PipelineConfig(link_backoff_ms=-1.0)

    def test_retry_policy_reflects_link_knobs(self):
        config = PipelineConfig(link_timeout_ms=80.0, link_max_retries=5,
                                link_backoff_ms=10.0)
        policy = config.retry_policy()
        assert policy.max_attempts == 5
        assert policy.timeout_ms == 80.0
        assert policy.penalty_ms(2) == 100.0


class TestTrainModels:
    def test_profiles_for_all_cameras(self):
        scenario = scenario_s2(seed=0)
        trained = train_models(scenario, small_config(), need_association=False)
        assert set(trained.profiles) == {0, 1}
        assert trained.associator is None

    def test_association_trained_when_needed(self):
        scenario = scenario_s2(seed=0)
        trained = train_models(scenario, small_config(), need_association=True)
        assert trained.associator is not None
        assert all(v > 0 for v in trained.typical_box_sizes.values())


class TestPipelineRuns:
    def test_frame_count(self):
        scenario = scenario_s2(seed=0)
        result = run_policy(scenario, "balb-ind", small_config("balb-ind"))
        assert result.n_frames == 5 * 4
        assert result.policy == "balb-ind"
        assert result.scenario == "S2"

    def test_full_policy_every_frame_is_key(self):
        scenario = scenario_s2(seed=0)
        result = run_policy(scenario, "full", small_config("full"))
        assert all(f.is_key_frame for f in result.frames)

    def test_balb_key_frames_once_per_horizon(self):
        scenario = scenario_s2(seed=0)
        result = run_policy(scenario, "balb", small_config("balb"))
        keys = [f.is_key_frame for f in result.frames]
        assert keys == [i % 5 == 0 for i in range(20)]

    def test_policy_needing_association_without_models_raises(self):
        scenario = scenario_s2(seed=0)
        trained = train_models(scenario, small_config(), need_association=False)
        with pytest.raises(ValueError):
            Pipeline(scenario, small_config("balb"), trained)

    def test_shared_trained_models_reused(self):
        scenario = scenario_s2(seed=0)
        config = small_config()
        trained = train_models(scenario, config)
        r1 = run_policy(scenario, "balb", config, trained)
        r2 = run_policy(scenario, "balb-cen", config, trained)
        assert r1.n_frames == r2.n_frames

    def test_balb_latency_below_full(self):
        scenario = scenario_s2(seed=0)
        config = small_config(n_horizons=8)
        trained = train_models(scenario, config)
        full = run_policy(scenario, "full", config, trained)
        balb = run_policy(scenario, "balb", config, trained)
        assert balb.mean_slowest_latency() < full.mean_slowest_latency()

    def test_overheads_recorded_on_regular_frames(self):
        scenario = scenario_s2(seed=0)
        result = run_policy(scenario, "balb", small_config())
        regular = [f for f in result.frames if not f.is_key_frame]
        assert regular
        for frame in regular:
            assert "tracking" in frame.overheads_ms
            assert "batching" in frame.overheads_ms

    def test_inference_recorded_for_every_camera(self):
        scenario = scenario_s2(seed=0)
        result = run_policy(scenario, "balb", small_config())
        for frame in result.frames:
            assert set(frame.inference_ms) == {0, 1}
