"""Tests for the camera node pipeline."""

import pytest

from repro.cameras.camera import Camera, CameraIntrinsics, CameraPose
from repro.devices.profiler import profile_device
from repro.devices.profiles import JETSON_TX2, latency_model_for
from repro.runtime.camera_node import CameraNode, TrackStatus
from repro.runtime.policies import IndependentPolicy
from repro.vision.detector import DetectorErrorModel
from repro.vision.flow import FlowNoiseModel
from repro.world.entities import ObjectClass, WorldObject


def make_node(seed=0, **kwargs):
    camera = Camera(
        camera_id=0,
        pose=CameraPose(x=0, y=0, z=6.0, yaw=0.0, pitch_down=0.3),
        intrinsics=CameraIntrinsics(focal_px=950, image_width=1280, image_height=704),
        max_range=80.0,
    )
    model = latency_model_for(JETSON_TX2)
    profile = profile_device(model, "tx2", seed=seed)
    defaults = dict(
        detector_errors=DetectorErrorModel(
            center_jitter_frac=0.0,
            size_jitter_frac=0.0,
            base_miss_prob=0.0,
            small_box_extra_miss=0.0,
            false_positive_rate=0.0,
        ),
        flow_noise=FlowNoiseModel(base_sigma_px=0.0, drift_growth=1.0),
        gpu_jitter=0.0,
    )
    defaults.update(kwargs)
    return CameraNode(camera, model, profile, seed=seed, **defaults)


def car(oid, x, y=0.0, speed=10.0):
    return WorldObject.of_class(oid, ObjectClass.CAR, x, y, 0.0, speed)


class TestKeyFrame:
    def test_detects_and_opens_tracks(self):
        node = make_node()
        outcome = node.process_key_frame([car(0, 20), car(1, 40)])
        assert len(node.tracks) == 2
        assert outcome.inference_ms == pytest.approx(
            node.latency_model.full_frame_latency()
        )
        assert len(outcome.report) == 2
        gts = sorted(gt for _, _, gt in outcome.report)
        assert gts == [0, 1]

    def test_track_continuity_across_key_frames(self):
        node = make_node()
        node.process_key_frame([car(0, 20)])
        tid_before = list(node.tracks)[0]
        # Object moved a little; the track should be matched, not recreated.
        node.process_key_frame([car(0, 21)])
        assert list(node.tracks) == [tid_before]

    def test_vanished_object_dropped(self):
        node = make_node()
        node.process_key_frame([car(0, 20)])
        node.process_key_frame([])
        assert node.tracks == {}

    def test_size_book_reset_each_horizon(self):
        node = make_node()
        node.process_key_frame([car(0, 20)])
        tid = list(node.tracks)[0]
        node.book.assign(tid, node.tracks[tid].bbox)
        node.process_key_frame([car(0, 20)])
        assert node.book.lookup(tid) is None


class TestApplySchedule:
    def test_statuses_installed(self):
        node = make_node()
        node.process_key_frame([car(0, 20), car(1, 40)])
        tids = sorted(node.tracks)
        node.apply_schedule([tids[0]], {tids[1]: 7})
        assert node.tracks[tids[0]].status is TrackStatus.ASSIGNED
        assert node.tracks[tids[1]].status is TrackStatus.SHADOW
        assert node.tracks[tids[1]].assigned_camera == 7

    def test_unmentioned_track_stays_assigned(self):
        node = make_node()
        node.process_key_frame([car(0, 20)])
        tid = list(node.tracks)[0]
        node.apply_schedule([], {})
        assert node.tracks[tid].status is TrackStatus.ASSIGNED


class TestRegularFrame:
    def test_assigned_tracks_inspected(self):
        node = make_node()
        objects = [car(0, 20), car(1, 40)]
        node.process_key_frame(objects)
        outcome = node.process_regular_frame(objects, IndependentPolicy())
        assert outcome.n_slices == 2
        assert outcome.inference_ms > 0
        assert sorted(d.gt_object_id for d in outcome.detections) == [0, 1]

    def test_moving_object_followed(self):
        node = make_node()
        obj = car(0, 20, speed=10.0)
        node.process_key_frame([obj])
        for _ in range(5):
            obj.x += 1.0
            outcome = node.process_regular_frame([obj], IndependentPolicy())
            assert [d.gt_object_id for d in outcome.detections] == [0]
        assert len(node.tracks) == 1

    def test_shadow_tracks_cost_nothing(self):
        node = make_node()
        objects = [car(0, 20)]
        node.process_key_frame(objects)
        tid = list(node.tracks)[0]
        node.apply_schedule([], {tid: 9})

        class ShadowOnly(IndependentPolicy):
            def inspect_track(self, track):
                return track.is_assigned

        outcome = node.process_regular_frame(objects, ShadowOnly())
        assert outcome.n_slices == 0
        assert outcome.inference_ms == 0.0
        assert node.tracks[tid].status is TrackStatus.SHADOW

    def test_new_region_opens_track(self):
        node = make_node()
        node.process_key_frame([])
        outcome = node.process_regular_frame([car(5, 30)], IndependentPolicy())
        assert outcome.n_new_regions == 1
        assert len(node.tracks) == 1
        assert [d.gt_object_id for d in outcome.detections] == [5]

    def test_policy_can_reject_new_region(self):
        node = make_node()
        node.process_key_frame([])

        class NoNew(IndependentPolicy):
            def allow_new_region(self, box):
                return False

        outcome = node.process_regular_frame([car(5, 30)], NoNew())
        assert outcome.n_new_regions == 0
        assert node.tracks == {}

    def test_track_dropped_after_misses(self):
        node = make_node(max_misses=1)
        obj = car(0, 20)
        node.process_key_frame([obj])
        # Object disappears entirely (e.g. left the world).
        for _ in range(4):
            node.process_regular_frame([], IndependentPolicy())
        assert node.tracks == {}

    def test_track_dropped_when_leaving_frame(self):
        node = make_node()
        obj = car(0, 20, y=0.0, speed=14.0)
        node.process_key_frame([obj])
        # Sweep the object far sideways out of view over several frames.
        for _ in range(60):
            obj.y += 2.0
            node.process_regular_frame([obj], IndependentPolicy())
            if not node.tracks:
                break
        assert node.tracks == {}

    def test_overheads_reported(self):
        node = make_node()
        objects = [car(0, 20)]
        node.process_key_frame(objects)
        outcome = node.process_regular_frame(objects, IndependentPolicy())
        assert outcome.tracking_ms > 0
        assert outcome.distributed_ms > 0
        assert outcome.batching_ms > 0

    def test_takeover_promotes_shadow(self):
        node = make_node()
        objects = [car(0, 20)]
        node.process_key_frame(objects)
        tid = list(node.tracks)[0]
        node.apply_schedule([], {tid: 9})

        class TakeEverything(IndependentPolicy):
            pass  # inspect_track returns True even for shadows

        outcome = node.process_regular_frame(objects, TakeEverything())
        assert outcome.n_takeovers == 1
        assert node.tracks[tid].status is TrackStatus.ASSIGNED
        assert node.tracks[tid].assigned_camera == node.camera.camera_id
