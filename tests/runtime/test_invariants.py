"""The control-plane invariant monitor (R1-R6) in isolation."""

import pickle

import pytest

from repro.runtime.invariants import InvariantMonitor, InvariantViolation


class TestR1OneSchedulerPerEpoch:
    def test_concurrent_issuers_sharing_an_epoch_raise(self):
        monitor = InvariantMonitor()
        monitor.observe_issue(frame=10, epoch=0, leader_id=-1)
        with pytest.raises(InvariantViolation, match="R1 split-brain"):
            monitor.observe_issue(frame=10, epoch=0, leader_id=1)

    def test_concurrent_issuers_in_distinct_epochs_are_legal(self):
        # The epoch-fenced protocol: a partition yields two authorities,
        # but every leadership change bumped the epoch.
        monitor = InvariantMonitor()
        monitor.observe_issue(frame=10, epoch=0, leader_id=-1)
        monitor.observe_issue(frame=10, epoch=1, leader_id=1)

    def test_sequential_leaders_sharing_an_epoch_are_legal(self):
        # Legacy crash failover (fencing off): primary then standby both
        # issue at epoch 0, at different frames. Not split-brain.
        monitor = InvariantMonitor()
        monitor.observe_issue(frame=10, epoch=0, leader_id=-1)
        monitor.observe_issue(frame=15, epoch=0, leader_id=1)
        monitor.observe_issue(frame=20, epoch=0, leader_id=-1)

    def test_same_leader_may_reissue_within_a_frame(self):
        monitor = InvariantMonitor()
        monitor.observe_issue(frame=5, epoch=2, leader_id=1)
        monitor.observe_issue(frame=5, epoch=2, leader_id=1)


class TestR2MonotonicAppliedEpochs:
    def test_stale_epoch_applied_raises(self):
        monitor = InvariantMonitor()
        monitor.observe_applied(frame=5, camera_id=0, epoch=2)
        with pytest.raises(InvariantViolation, match="R2 stale epoch"):
            monitor.observe_applied(frame=10, camera_id=0, epoch=1)

    def test_epochs_are_tracked_per_camera(self):
        monitor = InvariantMonitor()
        monitor.observe_applied(frame=5, camera_id=0, epoch=2)
        monitor.observe_applied(frame=10, camera_id=1, epoch=0)

    def test_equal_epoch_reapplication_is_legal(self):
        monitor = InvariantMonitor()
        monitor.observe_applied(frame=5, camera_id=0, epoch=1)
        monitor.observe_applied(frame=10, camera_id=0, epoch=1)


class TestR3AtMostOnceDispatch:
    def test_double_apply_in_one_frame_raises(self):
        monitor = InvariantMonitor()
        monitor.observe_applied(frame=5, camera_id=0, epoch=0)
        with pytest.raises(InvariantViolation, match="R3 duplicate"):
            monitor.observe_applied(frame=5, camera_id=0, epoch=0)

    def test_distinct_cameras_and_frames_are_legal(self):
        monitor = InvariantMonitor()
        monitor.observe_applied(frame=5, camera_id=0, epoch=0)
        monitor.observe_applied(frame=5, camera_id=1, epoch=0)
        monitor.observe_applied(frame=10, camera_id=0, epoch=0)


class TestR4LedgerConservation:
    def test_visible_and_lost_must_partition(self):
        monitor = InvariantMonitor()
        monitor.observe_frame(0, frozenset({1, 2}), frozenset({3}))
        with pytest.raises(InvariantViolation, match="R4 ledger overlap"):
            monitor.observe_frame(1, frozenset({1, 2}), frozenset({2}))

    def test_frame_index_never_moves_backwards(self):
        monitor = InvariantMonitor()
        monitor.observe_frame(5, frozenset(), frozenset())
        with pytest.raises(InvariantViolation, match="backwards"):
            monitor.observe_frame(4, frozenset(), frozenset())


class TestR5QuarantineFence:
    def test_assignment_to_quarantined_camera_raises(self):
        monitor = InvariantMonitor()
        monitor.observe_membership(frame=5, quarantined=frozenset({1}),
                                   epoch=1)
        monitor.observe_applied(frame=5, camera_id=0, epoch=0)
        with pytest.raises(InvariantViolation, match="R5 quarantine"):
            monitor.observe_applied(frame=5, camera_id=1, epoch=0)

    def test_readmitted_camera_may_apply_again(self):
        monitor = InvariantMonitor()
        monitor.observe_membership(frame=5, quarantined=frozenset({1}),
                                   epoch=1)
        monitor.observe_membership(frame=12, quarantined=frozenset(),
                                   epoch=3)
        monitor.observe_applied(frame=12, camera_id=1, epoch=0)


class TestR6MonotonicMembershipEpochs:
    def test_membership_epoch_backwards_raises(self):
        monitor = InvariantMonitor()
        monitor.observe_membership(frame=5, quarantined=frozenset(),
                                   epoch=2)
        with pytest.raises(InvariantViolation, match="R6 membership"):
            monitor.observe_membership(frame=6, quarantined=frozenset(),
                                       epoch=1)

    def test_equal_epoch_is_legal_between_transitions(self):
        monitor = InvariantMonitor()
        monitor.observe_membership(frame=5, quarantined=frozenset({0}),
                                   epoch=2)
        monitor.observe_membership(frame=6, quarantined=frozenset({0}),
                                   epoch=2)
        monitor.observe_membership(frame=7, quarantined=frozenset(),
                                   epoch=4)


class TestMonitorMechanics:
    def test_record_mode_collects_instead_of_raising(self):
        monitor = InvariantMonitor(mode="record")
        monitor.observe_issue(frame=10, epoch=0, leader_id=-1)
        monitor.observe_issue(frame=10, epoch=0, leader_id=1)
        monitor.observe_applied(frame=10, camera_id=0, epoch=3)
        monitor.observe_applied(frame=12, camera_id=0, epoch=1)
        assert len(monitor.violations) == 2
        assert "R1" in monitor.violations[0]
        assert "R2" in monitor.violations[1]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            InvariantMonitor(mode="ignore")

    def test_monitor_pickles_for_checkpoints(self):
        monitor = InvariantMonitor()
        monitor.observe_issue(frame=3, epoch=1, leader_id=-1)
        monitor.observe_applied(frame=3, camera_id=0, epoch=1)
        clone = pickle.loads(pickle.dumps(monitor))
        with pytest.raises(InvariantViolation):
            clone.observe_applied(frame=4, camera_id=0, epoch=0)

    def test_per_frame_state_rolls_forward(self):
        monitor = InvariantMonitor()
        monitor.observe_issue(frame=5, epoch=0, leader_id=-1)
        monitor.observe_frame(5, frozenset(), frozenset())
        # A new frame clears the per-frame issuer/dispatch sets.
        monitor.observe_issue(frame=10, epoch=0, leader_id=1)
