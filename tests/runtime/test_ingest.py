"""Property suite for the bounded ingest queue (ISSUE 6).

Hypothesis drives arbitrary interleavings of frame arrivals and
dispatch polls against every backpressure policy and asserts the
structural invariants:

* occupancy never exceeds capacity;
* conservation — ``admitted + rejected == offered`` at all times, and
  every offered frame ends in exactly one ledger disposition;
* ``drop-oldest`` evicts strictly in arrival order (always the head);
* the degrade and coalesce policies never drop a key frame: a key is
  never evicted, never rejected, and any drained backlog that contained
  a key surfaces as a key (possibly forced) capsule.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.runtime.ingest import (
    INGEST_POLICIES,
    BoundedFrameQueue,
    CoalesceToKeyFrame,
    DegradeToDistributed,
    DropOldest,
    FrameCapsule,
    make_ingest_policy,
)

KEY_SAFE_POLICIES = ("degrade-to-distributed", "coalesce-to-key-frame")


def capsule(frame, is_key=False, cam=0):
    return FrameCapsule(
        camera_id=cam, frame_index=frame, arrival_s=frame * 0.1, is_key=is_key
    )


@st.composite
def interleavings(draw):
    """(capacity, key cadence, op list) — True offers, False polls."""
    capacity = draw(st.integers(1, 4))
    cadence = draw(st.integers(1, 5))
    ops = draw(st.lists(st.booleans(), min_size=1, max_size=60))
    lags = draw(
        st.lists(st.integers(0, 3), min_size=len(ops), max_size=len(ops))
    )
    return capacity, cadence, ops, lags


def drive(policy_name, capacity, cadence, ops, lags):
    """Replay one interleaving; return the queue plus observed events."""
    queue = BoundedFrameQueue(0, capacity, make_ingest_policy(policy_name))
    evicted = []
    rejected_keys = 0
    offered_key_frames = set()
    polls = []  # (eligible key indices drained, served capsule)
    queued_keys = set()
    next_frame = 0
    for op, lag in zip(ops, lags):
        if op:
            cap = capsule(next_frame, is_key=next_frame % cadence == 0)
            next_frame += 1
            outcome = queue.offer(cap)
            if cap.is_key:
                offered_key_frames.add(cap.frame_index)
                if outcome.admitted:
                    queued_keys.add(cap.frame_index)
                else:
                    rejected_keys += 1
            evicted.extend(outcome.evicted)
            for victim in outcome.evicted:
                queued_keys.discard(victim.frame_index)
        else:
            upto = max(0, next_frame - 1 - lag)
            outcome = queue.poll_upto(upto)
            if outcome is not None:
                drained = {k for k in queued_keys if k <= upto}
                queued_keys -= drained
                polls.append((drained, outcome.capsule))
        assert queue.occupancy <= queue.capacity
        assert queue.peak_occupancy <= queue.capacity
        assert queue.admitted + queue.rejected == queue.offered
    return queue, evicted, rejected_keys, offered_key_frames, polls


class TestConservation:
    @pytest.mark.parametrize("policy", INGEST_POLICIES)
    @settings(max_examples=200, deadline=None)
    @given(plan=interleavings())
    def test_every_offered_frame_has_one_disposition(self, policy, plan):
        queue, *_ = drive(policy, *plan)
        queue.check_conservation()  # raises on any ledger imbalance

    @pytest.mark.parametrize("policy", INGEST_POLICIES)
    @settings(max_examples=100, deadline=None)
    @given(plan=interleavings())
    def test_drain_preserves_conservation(self, policy, plan):
        """Conservation also holds after the queue is fully drained."""
        queue, *_ = drive(policy, *plan)
        while queue.poll_upto(10**9) is not None:
            pass
        assert queue.queued_frames == 0
        queue.check_conservation()
        assert (
            queue.rejected + queue.served + queue.evicted
            + queue.stale_dropped + queue.coalesced
        ) == queue.offered


class TestDropOldest:
    @settings(max_examples=200, deadline=None)
    @given(plan=interleavings())
    def test_evictions_are_strictly_in_arrival_order(self, plan):
        _, evicted, *_ = drive("drop-oldest", *plan)
        indices = [victim.frame_index for victim in evicted]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)  # strict, no repeats

    @settings(max_examples=200, deadline=None)
    @given(plan=interleavings())
    def test_never_rejects_at_the_door(self, plan):
        queue, *_ = drive("drop-oldest", *plan)
        assert queue.rejected == 0

    def test_evicts_the_head_even_when_it_is_a_key(self):
        queue = BoundedFrameQueue(0, 1, DropOldest())
        queue.offer(capsule(0, is_key=True))
        outcome = queue.offer(capsule(1))
        assert [v.frame_index for v in outcome.evicted] == [0]
        assert outcome.evicted[0].is_key


class TestKeyFramePreservation:
    @pytest.mark.parametrize("policy", KEY_SAFE_POLICIES)
    @settings(max_examples=200, deadline=None)
    @given(plan=interleavings())
    def test_key_frames_never_evicted_or_rejected(self, policy, plan):
        _, evicted, rejected_keys, *_ = drive(policy, *plan)
        assert rejected_keys == 0
        assert not any(victim.is_key for victim in evicted)

    @pytest.mark.parametrize("policy", KEY_SAFE_POLICIES)
    @settings(max_examples=200, deadline=None)
    @given(plan=interleavings())
    def test_drained_keys_surface_as_key_capsules(self, policy, plan):
        """A poll that consumes a queued key must serve a key capsule."""
        _, _, _, _, polls = drive(policy, *plan)
        for drained_keys, served in polls:
            if drained_keys:
                assert served.is_key

    def test_degrade_evicts_oldest_non_key_and_flags_camera(self):
        queue = BoundedFrameQueue(0, 3, DegradeToDistributed())
        queue.offer(capsule(0, is_key=True))
        queue.offer(capsule(1))
        queue.offer(capsule(2))
        outcome = queue.offer(capsule(3))
        assert [v.frame_index for v in outcome.evicted] == [1]
        assert queue.degraded
        queue.clear_degraded()
        assert not queue.degraded

    def test_coalesce_folds_backlog_and_drops_nothing(self):
        queue = BoundedFrameQueue(0, 2, CoalesceToKeyFrame())
        for frame in range(4):
            queue.offer(capsule(frame))
        outcome = queue.poll_upto(3)
        assert outcome is not None
        assert queue.evicted == 0 and queue.rejected == 0
        assert queue.stale_dropped == 0
        # Everything offered is either served or folded into the serve.
        queue.check_conservation()
        assert outcome.capsule.is_key  # backlog promoted to a key frame


class TestQueueBasics:
    def test_rejects_capsule_for_wrong_camera(self):
        queue = BoundedFrameQueue(1, 2, DropOldest())
        with pytest.raises(ValueError, match="camera 0"):
            queue.offer(capsule(0, cam=0))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedFrameQueue(0, 0, DropOldest())

    def test_poll_on_empty_queue_is_a_stall(self):
        queue = BoundedFrameQueue(0, 2, DropOldest())
        assert queue.poll_upto(5) is None

    def test_poll_ignores_frames_from_the_future(self):
        queue = BoundedFrameQueue(0, 4, DropOldest())
        queue.offer(capsule(0))
        queue.offer(capsule(3))
        outcome = queue.poll_upto(1)
        assert outcome is not None and outcome.capsule.frame_index == 0
        assert queue.occupancy == 1  # frame 3 still waiting

    def test_staleness_counts_frames_behind_the_dispatch(self):
        queue = BoundedFrameQueue(0, 4, DropOldest())
        queue.offer(capsule(2))
        outcome = queue.poll_upto(5)
        assert outcome is not None and outcome.staleness_frames == 3

    def test_lost_upstream_books_as_offered_and_rejected(self):
        queue = BoundedFrameQueue(0, 2, DropOldest())
        queue.count_lost_upstream()
        assert queue.offered == 1 and queue.rejected == 1
        queue.check_conservation()

    def test_unknown_policy_name_rejected(self):
        with pytest.raises(ValueError, match="unknown ingest policy"):
            make_ingest_policy("teleport")
