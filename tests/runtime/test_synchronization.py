"""Tests for the imperfect-synchronization model."""

import numpy as np
import pytest

from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
from repro.runtime.synchronization import (
    SkewModel,
    WorldHistory,
    drifted_lag,
    snapshot_objects,
)
from repro.scenarios.aic21 import scenario_s2
from repro.world.entities import ObjectClass, WorldObject


def obj(oid, x):
    return WorldObject.of_class(oid, ObjectClass.CAR, x, 0.0, 0.0, 10.0)


class TestSkewModel:
    def test_lags_bounded(self):
        model = SkewModel(max_lag_frames=3)
        lags = model.sample_lags([0, 1, 2], np.random.default_rng(0))
        assert set(lags) == {0, 1, 2}
        assert all(0 <= lag <= 3 for lag in lags.values())

    def test_zero_lag_model(self):
        model = SkewModel(max_lag_frames=0)
        lags = model.sample_lags([0, 1], np.random.default_rng(0))
        assert all(lag == 0 for lag in lags.values())

    def test_jitter_stays_nonnegative(self):
        model = SkewModel(max_lag_frames=1, jitter=True)
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert model.jittered_lag(0, rng) >= 0

    def test_invalid_lag_raises(self):
        with pytest.raises(ValueError):
            SkewModel(max_lag_frames=-1)

    def test_jittered_lag_passthrough_without_jitter(self):
        model = SkewModel(max_lag_frames=3, jitter=False)
        rng = np.random.default_rng(0)
        # without jitter the base lag comes back untouched, no rng draw
        for base in (0, 1, 3):
            assert model.jittered_lag(base, rng) == base
        # the rng was never consumed
        assert rng.integers(0, 100) == np.random.default_rng(0).integers(0, 100)

    def test_jittered_lag_moves_at_most_one_frame(self):
        model = SkewModel(max_lag_frames=3, jitter=True)
        rng = np.random.default_rng(1)
        for _ in range(100):
            lag = model.jittered_lag(2, rng)
            assert 1 <= lag <= 3

    def test_jittered_lag_clamps_at_zero(self):
        model = SkewModel(max_lag_frames=3, jitter=True)
        rng = np.random.default_rng(2)
        draws = [model.jittered_lag(0, rng) for _ in range(100)]
        assert all(0 <= lag <= 1 for lag in draws)
        assert 0 in draws  # -1 jitter draws clamp to 0, not -1

    def test_jittered_lag_covers_all_three_offsets(self):
        model = SkewModel(max_lag_frames=5, jitter=True)
        rng = np.random.default_rng(3)
        draws = {model.jittered_lag(2, rng) for _ in range(200)}
        assert draws == {1, 2, 3}


class TestWorldHistory:
    def test_view_zero_is_latest(self):
        history = WorldHistory(depth=3)
        history.push([obj(0, 10.0)])
        history.push([obj(0, 20.0)])
        assert history.view(0)[0].x == 20.0
        assert history.view(1)[0].x == 10.0

    def test_lag_clamped_to_available_depth(self):
        history = WorldHistory(depth=5)
        history.push([obj(0, 10.0)])
        assert history.view(4)[0].x == 10.0  # only one snapshot available

    def test_buffer_depth_enforced(self):
        history = WorldHistory(depth=2)
        for i in range(5):
            history.push([obj(0, float(i))])
        assert len(history) == 2
        assert history.view(1)[0].x == 3.0

    def test_snapshots_are_isolated_copies(self):
        history = WorldHistory(depth=2)
        source = obj(0, 10.0)
        history.push([source])
        source.x = 99.0  # mutate the live object
        assert history.view(0)[0].x == 10.0

    def test_empty_history(self):
        assert WorldHistory(depth=2).view(0) == []

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            WorldHistory(depth=0)
        with pytest.raises(ValueError):
            WorldHistory(depth=2).view(-1)

    def test_empty_history_any_lag_is_empty(self):
        history = WorldHistory(depth=3)
        assert history.view(0) == []
        assert history.view(10) == []

    def test_lag_beyond_depth_clamps_to_oldest(self):
        history = WorldHistory(depth=3)
        for i in range(3):
            history.push([obj(0, float(i))])
        # lag 2 is the oldest retained; anything larger clamps to it
        assert history.view(2)[0].x == 0.0
        assert history.view(7)[0].x == 0.0

    def test_view_after_eviction_still_clamps(self):
        history = WorldHistory(depth=2)
        for i in range(4):
            history.push([obj(0, float(i))])
        # snapshots 0 and 1 were evicted; lag 5 clamps to snapshot 2
        assert history.view(5)[0].x == 2.0


class TestDriftedLag:
    def test_drift_adds_to_static_lag(self):
        assert drifted_lag(2, 0, depth=10) == 2
        assert drifted_lag(2, 3, depth=10) == 5

    def test_drift_clamps_to_history_depth(self):
        # A runaway clock can never ask for a frame the buffer evicted.
        assert drifted_lag(2, 50, depth=10) == 9
        assert drifted_lag(0, 9, depth=10) == 9


class TestSnapshotObjects:
    def test_snapshot_is_an_isolated_copy(self):
        source = obj(0, 10.0)
        frozen = snapshot_objects([source])
        source.x = 99.0
        assert frozen[0].x == 10.0
        assert frozen[0].object_id == 0

    def test_snapshot_of_empty_view(self):
        assert snapshot_objects([]) == []


class TestPipelineWithSkew:
    def test_skewed_run_completes(self):
        scenario = scenario_s2(seed=0)
        config = PipelineConfig(
            policy="balb",
            horizon=5,
            n_horizons=4,
            warmup_s=15.0,
            train_duration_s=40.0,
            max_camera_lag_frames=3,
        )
        trained = train_models(scenario, config)
        result = run_policy(scenario, "balb", config, trained)
        assert result.n_frames == 20
        assert 0.0 <= result.object_recall() <= 1.0

    def test_negative_lag_config_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(max_camera_lag_frames=-1)
