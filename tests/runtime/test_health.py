"""Fleet-health watchdog: lifecycle unit tests + hypothesis properties.

The watchdog is the determinism-critical core of the fleet-membership
defense, so beyond the example-based lifecycle tests the properties
here drive it with arbitrary signal sequences and assert the contracts
the pipeline relies on: no ``QUARANTINED -> ACTIVE`` edge ever exists
(readmission always passes through PROBATION), membership epochs only
move forward and bump exactly on membership edges, scores stay in
``[0, 1]`` and fall monotonically under sustained faults, and identical
signal sequences replay to identical transitions and scores.
"""

import copy
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.health import (
    FleetHealthWatchdog,
    HealthConfig,
    HealthSignals,
    HealthState,
    content_token,
)

CFG = HealthConfig()


def healthy(frame, cam=0):
    """A live camera watching a moving scene (token varies per frame)."""
    return HealthSignals(alive=True, content_token=frame * 31 + cam)


def frozen(token=1234):
    """A live camera repeating the same frame content."""
    return HealthSignals(alive=True, content_token=token)


def drive(watchdog, frames, make_signals):
    """Feed ``frames`` frames; return every transition taken."""
    transitions = []
    for frame in range(frames):
        transitions += watchdog.observe(frame, make_signals(frame))
    return transitions


class TestLifecycle:
    def test_healthy_fleet_never_transitions(self):
        watchdog = FleetHealthWatchdog([0, 1, 2])
        taken = drive(
            watchdog, 50,
            lambda f: {c: healthy(f, c) for c in range(3)},
        )
        assert taken == []
        assert watchdog.membership_epoch == 0
        assert set(watchdog.states().values()) == {HealthState.ACTIVE}

    def test_frozen_camera_walks_the_full_lifecycle(self):
        watchdog = FleetHealthWatchdog([0, 1])
        freeze_until = 20

        def signals(frame):
            sig0 = frozen() if frame < freeze_until else healthy(frame)
            return {0: sig0, 1: healthy(frame, 1)}

        taken = drive(watchdog, 60, signals)
        path = [(t.previous, t.state) for t in taken if t.camera_id == 0]
        assert path == [
            (HealthState.ACTIVE, HealthState.SUSPECT),
            (HealthState.SUSPECT, HealthState.QUARANTINED),
            (HealthState.QUARANTINED, HealthState.PROBATION),
            (HealthState.PROBATION, HealthState.ACTIVE),
        ]
        # The healthy peer never budged, and only membership edges (the
        # last three) bumped the epoch.
        assert all(t.camera_id == 0 for t in taken)
        assert watchdog.membership_epoch == 3
        assert watchdog.state_of(0) is HealthState.ACTIVE

    def test_quarantine_reacts_within_configured_frames(self):
        watchdog = FleetHealthWatchdog([0])
        deadline = CFG.suspect_after + CFG.quarantine_after + 1
        drive(watchdog, deadline + 1, lambda f: {0: frozen()})
        assert watchdog.state_of(0) is HealthState.QUARANTINED

    def test_minimum_quarantine_dwell_is_respected(self):
        watchdog = FleetHealthWatchdog([0])
        quarantine_frame = None
        probation_frame = None
        for frame in range(80):
            # Fault clears the instant quarantine lands: the dwell alone
            # must hold the camera out.
            sig = frozen() if quarantine_frame is None else healthy(frame)
            for t in watchdog.observe(frame, {0: sig}):
                if t.state is HealthState.QUARANTINED:
                    quarantine_frame = frame
                if t.state is HealthState.PROBATION:
                    probation_frame = frame
        assert quarantine_frame is not None and probation_frame is not None
        assert (
            probation_frame - quarantine_frame >= CFG.min_quarantine_frames
        )

    def test_probation_relapse_returns_to_quarantine(self):
        watchdog = FleetHealthWatchdog([0])
        state = {"relapsed": False}

        def signals(frame):
            if watchdog.state_of(0) is HealthState.PROBATION:
                state["relapsed"] = True
                return {0: frozen(99)}  # one bad frame on the leash
            if state["relapsed"]:
                return {0: healthy(frame)}
            return {0: frozen() if frame < 10 else healthy(frame)}

        taken = drive(watchdog, 40, signals)
        edges = [(t.previous, t.state) for t in taken]
        assert (HealthState.PROBATION, HealthState.QUARANTINED) in edges

    def test_flapping_heartbeat_is_unhealthy_even_while_up(self):
        watchdog = FleetHealthWatchdog([0])
        drive(
            watchdog, 30,
            lambda f: {0: HealthSignals(alive=f % 2 == 0,
                                        content_token=f * 31)},
        )
        assert watchdog.state_of(0) is HealthState.QUARANTINED

    def test_skew_and_quality_signals_quarantine(self):
        for sig in (
            HealthSignals(alive=True, content_token=0,
                          skew_frames=CFG.skew_tolerance_frames + 1),
            HealthSignals(alive=True, content_token=0,
                          quality=CFG.quality_floor - 0.2),
        ):
            watchdog = FleetHealthWatchdog([0])
            for frame in range(20):
                varied = HealthSignals(
                    alive=True, content_token=frame * 31,
                    skew_frames=sig.skew_frames, quality=sig.quality,
                )
                watchdog.observe(frame, {0: varied})
            assert watchdog.state_of(0) is HealthState.QUARANTINED

    def test_missing_signals_leave_camera_untouched(self):
        watchdog = FleetHealthWatchdog([0, 1])
        drive(watchdog, 20, lambda f: {1: healthy(f, 1)})
        assert watchdog.state_of(0) is HealthState.ACTIVE
        assert watchdog.score_of(0) == 1.0

    def test_watchdog_requires_cameras(self):
        with pytest.raises(ValueError):
            FleetHealthWatchdog([])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(probation_frames=0)
        with pytest.raises(ValueError):
            HealthConfig(quality_floor=0.0)
        with pytest.raises(ValueError):
            HealthConfig(skew_tolerance_frames=-1)

    def test_watchdog_pickles_mid_lifecycle(self):
        watchdog = FleetHealthWatchdog([0, 1])
        drive(watchdog, 8, lambda f: {0: frozen(), 1: healthy(f, 1)})
        clone = pickle.loads(pickle.dumps(watchdog))
        assert clone.states() == watchdog.states()
        # Both halves continue identically from the restore point.
        for frame in range(8, 30):
            sigs = {0: frozen(), 1: healthy(frame, 1)}
            a = watchdog.observe(frame, sigs)
            b = clone.observe(frame, copy.deepcopy(sigs))
            assert a == b
        assert clone.membership_epoch == watchdog.membership_epoch


class TestContentToken:
    def test_token_tracks_scene_motion(self):
        class Obj:
            def __init__(self, object_id, x, y):
                self.object_id = object_id
                self.x = x
                self.y = y

        a = [Obj(1, 10.0, 20.0), Obj(2, 30.0, 40.0)]
        moved = [Obj(1, 10.5, 20.0), Obj(2, 30.0, 40.0)]
        noise = [Obj(1, 10.004, 20.0), Obj(2, 30.0, 40.0)]
        assert content_token(a) == content_token(list(a))
        assert content_token(a) != content_token(moved)
        # Sub-quantum float noise does not defeat freeze detection.
        assert content_token(a) == content_token(noise)
        assert content_token([]) == content_token([])


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------

#: One frame of one camera's raw signal material. Tokens are drawn from a
#: tiny alphabet so repeats (the freeze signature) actually occur.
signal_st = st.builds(
    HealthSignals,
    alive=st.booleans(),
    content_token=st.integers(min_value=0, max_value=3),
    skew_frames=st.integers(min_value=0, max_value=5),
    quality=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=1.0)
    ),
)

sequence_st = st.lists(signal_st, min_size=1, max_size=60)


@settings(max_examples=60, deadline=None)
@given(seq=sequence_st)
def test_no_transition_skips_probation(seq):
    """Hysteresis: there is no QUARANTINED -> ACTIVE edge, ever."""
    watchdog = FleetHealthWatchdog([0])
    for frame, sig in enumerate(seq):
        for t in watchdog.observe(frame, {0: sig}):
            assert not (
                t.previous is HealthState.QUARANTINED
                and t.state is HealthState.ACTIVE
            )
            if t.state is HealthState.ACTIVE:
                assert t.previous in (
                    HealthState.SUSPECT, HealthState.PROBATION
                )


@settings(max_examples=60, deadline=None)
@given(seq=sequence_st)
def test_epoch_monotone_and_counts_membership_edges(seq):
    watchdog = FleetHealthWatchdog([0])
    last_epoch = 0
    membership_edges = 0
    for frame, sig in enumerate(seq):
        for t in watchdog.observe(frame, {0: sig}):
            assert t.epoch >= last_epoch
            last_epoch = t.epoch
            if t.membership_change:
                membership_edges += 1
            else:
                # Observational edges never move the epoch.
                assert t.epoch == watchdog.membership_epoch
    assert watchdog.membership_epoch == membership_edges
    assert last_epoch == watchdog.membership_epoch


@settings(max_examples=60, deadline=None)
@given(seq=sequence_st)
def test_score_stays_in_unit_interval(seq):
    watchdog = FleetHealthWatchdog([0])
    for frame, sig in enumerate(seq):
        watchdog.observe(frame, {0: sig})
        assert 0.0 <= watchdog.score_of(0) <= 1.0


@settings(max_examples=40, deadline=None)
@given(frames=st.integers(min_value=1, max_value=50))
def test_score_decays_monotonically_under_sustained_fault(frames):
    """A dead camera's score strictly decreases toward zero."""
    watchdog = FleetHealthWatchdog([0])
    last = watchdog.score_of(0)
    for frame in range(frames):
        watchdog.observe(frame, {0: HealthSignals(alive=False)})
        score = watchdog.score_of(0)
        assert score < last
        last = score


@settings(max_examples=40, deadline=None)
@given(seq=sequence_st)
def test_identical_sequences_replay_identically(seq):
    """Determinism: the watchdog is a pure function of its inputs."""
    a = FleetHealthWatchdog([0, 1])
    b = FleetHealthWatchdog([0, 1])
    for frame, sig in enumerate(seq):
        sigs = {0: sig, 1: healthy(frame, 1)}
        assert a.observe(frame, sigs) == b.observe(
            frame, copy.deepcopy(sigs)
        )
        assert a.score_of(0) == b.score_of(0)
    assert a.states() == b.states()
    assert a.membership_epoch == b.membership_epoch


@settings(max_examples=40, deadline=None)
@given(seq=sequence_st)
def test_quarantine_needs_a_sustained_streak(seq):
    """No camera is quarantined faster than the configured streaks
    allow: quarantine requires ``suspect_after + quarantine_after``
    consecutive unhealthy frames, so any shorter prefix cannot have
    produced one."""
    watchdog = FleetHealthWatchdog([0])
    quarantined_at = None
    for frame, sig in enumerate(seq):
        for t in watchdog.observe(frame, {0: sig}):
            if (
                t.state is HealthState.QUARANTINED
                and quarantined_at is None
            ):
                quarantined_at = frame
    floor = CFG.suspect_after + CFG.quarantine_after
    if quarantined_at is not None:
        assert quarantined_at >= floor - 1
