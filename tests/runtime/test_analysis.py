"""Tests for the post-run analysis module."""

import pytest

from repro.analysis import (
    compare_policies,
    jain_fairness,
    latency_percentiles,
    load_balance_index,
    per_horizon_latency,
    per_horizon_recall,
    slice_load_series,
)
from repro.runtime.metrics import FrameRecord, RunResult


def record(idx, inference, visible=(), detected=(), key=False, n_slices=None):
    return FrameRecord(
        frame_index=idx,
        is_key_frame=key,
        inference_ms=inference,
        visible_gt=frozenset(visible),
        detected_gt=frozenset(detected),
        n_slices=n_slices or {},
    )


def simple_result():
    result = RunResult("balb", "S1", horizon=2)
    result.add(record(0, {0: 10.0, 1: 30.0}, {1}, {1}, key=True))
    result.add(record(1, {0: 20.0, 1: 10.0}, {1, 2}, {1},
                      n_slices={0: 2, 1: 1}))
    result.add(record(2, {0: 5.0, 1: 5.0}, {2}, {2}, key=True))
    result.add(record(3, {0: 15.0, 1: 25.0}, {2}, {2}, n_slices={0: 3}))
    return result


class TestJainFairness:
    def test_perfect_balance(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_worker(self):
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([-1.0, 2.0])

    def test_bounds(self):
        values = [1.0, 7.0, 3.0, 9.0]
        f = jain_fairness(values)
        assert 1.0 / len(values) <= f <= 1.0


class TestResultAnalysis:
    def test_load_balance_index(self):
        index = load_balance_index(simple_result())
        assert 0.5 <= index <= 1.0

    def test_latency_percentiles_ordered(self):
        pct = latency_percentiles(simple_result(), (50.0, 90.0, 99.0))
        assert pct[50.0] <= pct[90.0] <= pct[99.0]
        assert pct[99.0] <= 30.0

    def test_percentiles_empty_raise(self):
        empty = RunResult("balb", "S1", horizon=2)
        with pytest.raises(ValueError):
            latency_percentiles(empty)

    def test_per_horizon_latency(self):
        series = per_horizon_latency(simple_result())
        # Horizon 1: cam0 mean 15, cam1 mean 20 -> 20.
        # Horizon 2: cam0 mean 10, cam1 mean 15 -> 15.
        assert series == [pytest.approx(20.0), pytest.approx(15.0)]

    def test_per_horizon_recall(self):
        series = per_horizon_recall(simple_result())
        assert series[0] == pytest.approx(2 / 3)
        assert series[1] == pytest.approx(1.0)

    def test_slice_load_series(self):
        series = slice_load_series(simple_result(), 0)
        assert series == [2, 3]
        assert slice_load_series(simple_result(), 9) == [0, 0]


class TestComparePolicies:
    def test_comparison_table(self):
        comparison = compare_policies(
            {"balb": simple_result(), "full": simple_result()}
        )
        rows = comparison.as_table_rows()
        assert len(rows) == 2
        policies = {row[0] for row in rows}
        assert policies == {"balb", "full"}
        for row in rows:
            assert 0.0 <= row[1] <= 1.0  # recall
            assert row[2] > 0  # latency

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            compare_policies({})
