"""Tests for the overhead model and regular-frame policies."""

import pytest

from repro.core.distributed import DistributedPolicy
from repro.core.masks import CameraMask
from repro.geometry.box import BBox
from repro.runtime.overhead import OverheadModel
from repro.runtime.policies import (
    BALBPolicy,
    CentralOnlyPolicy,
    IndependentPolicy,
    StaticPartitioningPolicy,
    TrackView,
)


class TestOverheadModel:
    def test_tracking_scales_with_tracks(self):
        m = OverheadModel()
        assert m.tracking_ms(10) > m.tracking_ms(0)

    def test_central_scales_with_objects_and_cameras(self):
        m = OverheadModel()
        assert m.central_stage_ms(20, 5) > m.central_stage_ms(5, 2)

    def test_distributed_linear(self):
        m = OverheadModel()
        base = m.distributed_ms(0)
        assert m.distributed_ms(100) == pytest.approx(
            base + 100 * m.distributed_per_object_ms
        )

    def test_batching_costs(self):
        m = OverheadModel()
        assert m.batching_ms(0, 0, 0.0) == 0.0
        assert m.batching_ms(8, 2, 0.3) > 0.0

    def test_magnitudes_match_table2_ranges(self):
        """Paper Table II: tracking 11-21 ms, batching 7-20 ms, central
        1-3 ms amortized, distributed ~0.1-0.2 ms."""
        m = OverheadModel()
        assert 8 <= m.tracking_ms(8) <= 25
        assert 0.05 <= m.distributed_ms(15) <= 0.3
        # 12 slices of 128 px in 2 batches: ~0.2 Mpx.
        assert 5 <= m.batching_ms(12, 2, 0.2) <= 25
        # 15 objects, 5 cameras, amortized over a 10-frame horizon.
        assert 0.5 <= m.central_stage_ms(15, 5) / 10 <= 3.5

    def test_negative_inputs_raise(self):
        m = OverheadModel()
        with pytest.raises(ValueError):
            m.tracking_ms(-1)
        with pytest.raises(ValueError):
            m.central_stage_ms(-1, 2)
        with pytest.raises(ValueError):
            m.distributed_ms(-1)
        with pytest.raises(ValueError):
            m.batching_ms(-1, 0, 0)


def full_mask(camera_id, coverage, nx=4, ny=3):
    grid = [[tuple(coverage) for _ in range(nx)] for _ in range(ny)]
    return CameraMask(camera_id, 400.0, 300.0, nx, ny, grid)


def view(tid, assigned, assigned_cam, cx=200.0, cy=150.0):
    return TrackView(
        track_id=tid,
        bbox=BBox.from_xywh(cx, cy, 30, 30),
        is_assigned=assigned,
        assigned_camera=assigned_cam,
    )


class TestPolicies:
    def test_independent_tracks_everything(self):
        policy = IndependentPolicy()
        assert policy.inspect_track(view(1, False, 2))
        assert policy.allow_new_region(BBox(0, 0, 10, 10))

    def test_balb_inspects_assigned(self):
        dist = DistributedPolicy(0, full_mask(0, [0, 1]), (1, 0))
        policy = BALBPolicy(dist)
        assert policy.inspect_track(view(1, True, 0))

    def test_balb_takeover_when_owner_lost(self):
        # Mask says only camera 0 covers the cell -> camera 1 lost it.
        dist = DistributedPolicy(0, full_mask(0, [0]), (1, 0))
        policy = BALBPolicy(dist)
        assert policy.inspect_track(view(1, False, 1))

    def test_balb_no_takeover_when_owner_still_sees(self):
        dist = DistributedPolicy(0, full_mask(0, [0, 1]), (1, 0))
        policy = BALBPolicy(dist)
        assert not policy.inspect_track(view(1, False, 1))

    def test_balb_new_region_by_priority(self):
        dist_hi = DistributedPolicy(0, full_mask(0, [0, 1]), (0, 1))
        dist_lo = DistributedPolicy(0, full_mask(0, [0, 1]), (1, 0))
        box = BBox.from_xywh(200, 150, 30, 30)
        assert BALBPolicy(dist_hi).allow_new_region(box)
        assert not BALBPolicy(dist_lo).allow_new_region(box)

    def test_central_only_never_expands(self):
        dist = DistributedPolicy(0, full_mask(0, [0]), (0,))
        policy = CentralOnlyPolicy(dist)
        assert policy.inspect_track(view(1, True, 0))
        assert not policy.inspect_track(view(2, False, 1))
        assert not policy.allow_new_region(BBox.from_xywh(200, 150, 30, 30))

    def test_shadow_without_owner_not_taken(self):
        dist = DistributedPolicy(0, full_mask(0, [0]), (0,))
        policy = BALBPolicy(dist)
        assert not policy.inspect_track(view(1, False, None))

    def test_sp_owns_by_capacity_bands(self):
        mask0 = full_mask(0, [0, 1])
        caps = {0: 1.0, 1: 1.0}
        policy = StaticPartitioningPolicy(0, mask0, caps)
        left = view(1, True, 0, cx=50.0)
        right = view(2, True, 0, cx=350.0)
        assert policy.inspect_track(left)  # left band belongs to camera 0
        assert not policy.inspect_track(right)

    def test_sp_new_region_same_rule(self):
        mask0 = full_mask(0, [0, 1])
        policy = StaticPartitioningPolicy(0, mask0, {0: 1.0, 1: 1.0})
        assert policy.allow_new_region(BBox.from_xywh(50, 150, 30, 30))
        assert not policy.allow_new_region(BBox.from_xywh(350, 150, 30, 30))

    def test_sp_exclusive_cell_always_owned(self):
        policy = StaticPartitioningPolicy(0, full_mask(0, [0]), {0: 1.0})
        assert policy.inspect_track(view(1, True, 0, cx=390.0))
