"""Tests for the central scheduler node."""

import numpy as np
import pytest

from repro.association.pairwise import PairwiseAssociator
from repro.association.training import AssociationDataset
from repro.devices.profiler import DeviceProfile
from repro.geometry.box import BBox
from repro.net.link import DuplexChannel
from repro.runtime.scheduler_node import CentralScheduler


def profile(name, t_full, t64=5.0, t128=10.0):
    return DeviceProfile(
        device_name=name,
        size_set=(64, 128),
        t_full=t_full,
        batch_latency_ms={64: t64, 128: t128},
        batch_limits={64: 4, 128: 2},
    )


def shift_associator(n=1500, dx=200.0, seed=0):
    """Cameras 0/1 share everything, shifted horizontally by dx."""
    rng = np.random.default_rng(seed)
    ds = AssociationDataset()
    fwd = ds.pair(0, 1)
    back = ds.pair(1, 0)
    for _ in range(n):
        cx = rng.uniform(100, 800)
        cy = rng.uniform(100, 600)
        w = rng.uniform(30, 80)
        src = BBox.from_xywh(cx, cy, w, w * 0.7)
        dst = src.translate(dx, 0)
        fwd.add(src, dst)
        back.add(dst, src)
    return PairwiseAssociator().fit(ds)


def make_scheduler(mode="balb", channels=False):
    profiles = {0: profile("fast", 100.0), 1: profile("slow", 400.0, t64=20.0)}
    return CentralScheduler(
        profiles=profiles,
        associator=shift_associator(),
        frame_sizes={0: (1280, 704), 1: (1280, 704)},
        typical_box_sizes={0: 50.0, 1: 50.0},
        size_set=(64, 128),
        mode=mode,
        mask_grid=(8, 6),
        channels={
            0: DuplexChannel(rng=np.random.default_rng(0)),
            1: DuplexChannel(rng=np.random.default_rng(1)),
        }
        if channels
        else None,
    )


def entry(tid, cx, cy, gt, w=50.0):
    return (tid, BBox.from_xywh(cx, cy, w, w * 0.7), gt)


class TestBALBScheduling:
    def test_shared_object_assigned_once(self):
        scheduler = make_scheduler()
        reports = {
            0: [entry(10, 300, 300, gt=1)],
            1: [entry(20, 500, 300, gt=1)],
        }
        decision = scheduler.schedule(reports)
        assert decision.n_global_objects == 1
        total_assigned = sum(len(v) for v in decision.assigned.values())
        total_shadows = sum(len(v) for v in decision.shadows.values())
        assert total_assigned == 1
        assert total_shadows == 1

    def test_shared_object_lands_on_fast_camera(self):
        scheduler = make_scheduler()
        reports = {
            0: [entry(10, 300, 300, gt=1)],
            1: [entry(20, 500, 300, gt=1)],
        }
        decision = scheduler.schedule(reports)
        assert decision.assigned[0] == [10]
        assert decision.shadows[1] == {20: 0}

    def test_priority_order_fast_first(self):
        scheduler = make_scheduler()
        decision = scheduler.schedule({0: [], 1: []})
        assert decision.priority_order == (0, 1)

    def test_exclusive_objects_stay_local(self):
        scheduler = make_scheduler()
        reports = {
            0: [entry(10, 900, 650, gt=1)],  # outside the mapped region
            1: [],
        }
        decision = scheduler.schedule(reports)
        assert decision.assigned[0] == [10]

    def test_communication_cost_counted(self):
        scheduler = make_scheduler(channels=True)
        reports = {
            0: [entry(10, 300, 300, gt=1)],
            1: [entry(20, 500, 300, gt=1)],
        }
        decision = scheduler.schedule(reports)
        assert decision.comm_ms > 0
        assert decision.central_ms > 0

    def test_no_channels_no_comm_cost(self):
        scheduler = make_scheduler(channels=False)
        decision = scheduler.schedule({0: [], 1: []})
        assert decision.comm_ms == 0.0

    def test_masks_cover_all_cameras(self):
        scheduler = make_scheduler()
        assert set(scheduler.masks) == {0, 1}

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            make_scheduler(mode="bogus")


class TestSPScheduling:
    def test_sp_priority_by_capacity(self):
        scheduler = make_scheduler(mode="sp")
        decision = scheduler.schedule({0: [], 1: []})
        # Capacity = 1/t_full: camera 0 (t_full 100) is the most powerful.
        assert decision.priority_order[0] == 0

    def test_sp_assignment_follows_static_owner(self):
        scheduler = make_scheduler(mode="sp")
        reports = {
            0: [entry(10, 300, 300, gt=1)],
            1: [entry(20, 500, 300, gt=1)],
        }
        decision = scheduler.schedule(reports)
        assigned_total = sum(len(v) for v in decision.assigned.values())
        # SP assigns at most one owner; mask imperfection may drop it.
        assert assigned_total <= 1


class TestMembershipRefit:
    def test_refit_shrinks_candidate_set_to_survivors(self):
        scheduler = make_scheduler()
        cost = scheduler.refit_members([0])
        assert cost > 0
        assert scheduler.active_members == frozenset({0})
        # Reports from the quarantined camera are ignored: the shared
        # object resolves entirely through the survivor.
        reports = {
            0: [entry(10, 300, 300, gt=1)],
            1: [entry(20, 500, 300, gt=1)],
        }
        decision = scheduler.schedule(reports)
        assert decision.assigned[0] == [10]
        assert 1 not in decision.assigned or not decision.assigned[1]
        assert not decision.shadows.get(1)

    def test_refit_is_reversible_on_readmission(self):
        scheduler = make_scheduler()
        scheduler.refit_members([0])
        scheduler.refit_members([0, 1])
        assert scheduler.active_members == frozenset({0, 1})
        reports = {
            0: [entry(10, 300, 300, gt=1)],
            1: [entry(20, 500, 300, gt=1)],
        }
        decision = scheduler.schedule(reports)
        # Back to the two-member outcome: fast camera owns, slow shadows.
        assert decision.assigned[0] == [10]
        assert decision.shadows[1] == {20: 0}

    def test_refit_requires_a_surviving_camera(self):
        scheduler = make_scheduler()
        with pytest.raises(ValueError):
            scheduler.refit_members([])
        with pytest.raises(ValueError):
            scheduler.refit_members([99])  # not a fleet camera

    def test_refit_cost_scales_with_membership(self):
        scheduler = make_scheduler()
        both = scheduler.refit_members([0, 1])
        one = scheduler.refit_members([0])
        assert both >= one > 0


class TestProbationDemotion:
    def test_probation_camera_loses_shared_objects(self):
        scheduler = make_scheduler()
        reports = {
            0: [entry(10, 300, 300, gt=1)],
            1: [entry(20, 500, 300, gt=1)],
        }
        # Camera 0 would win the shared object outright (fast camera);
        # on probation it must cede to the full member.
        decision = scheduler.schedule(
            reports, no_authority=frozenset({0})
        )
        assert decision.assigned.get(1) == [20]
        assert not decision.assigned.get(0)

    def test_probation_camera_keeps_exclusive_objects(self):
        scheduler = make_scheduler()
        reports = {
            0: [entry(10, 900, 650, gt=1)],  # outside the mapped region
            1: [],
        }
        decision = scheduler.schedule(
            reports, no_authority=frozenset({0})
        )
        # Demotion never creates coverage loss: nobody else sees it.
        assert decision.assigned[0] == [10]

    def test_empty_probation_set_changes_nothing(self):
        scheduler = make_scheduler()
        reports = {
            0: [entry(10, 300, 300, gt=1)],
            1: [entry(20, 500, 300, gt=1)],
        }
        plain = scheduler.schedule(reports)
        fenced = scheduler.schedule(reports, no_authority=frozenset())
        assert plain.assigned == fenced.assigned
        assert plain.shadows == fenced.shadows
