"""Fleet-health defense wired into the pipeline, end to end.

Acceptance criteria on the golden S1/seed-0 configuration:

* a scripted sensor freeze quarantines the camera within a bounded
  number of frames, re-fits membership over the survivors, and readmits
  the camera through probation once the fault clears — with the R1-R6
  invariant monitor armed the whole way;
* an *armed* watchdog whose fault schedule never fires produces frame
  records identical to the fault-free run (the defense draws no RNG and
  never spuriously quarantines a healthy fleet);
* ``fleet_health=False`` still injects the sensor fault — the failure
  model and the defense are independently switchable;
* same-seed defended runs are bit-identical.
"""

import pickle

import pytest

from repro.runtime.health import HealthConfig
from repro.runtime.pipeline import PipelineConfig, run_policy, train_models
from repro.scenarios.aic21 import get_scenario

FREEZE_AT = 5
FREEZE_FOR = 12
FREEZE_SPEC = f"freeze:cam=1,at={FREEZE_AT},for={FREEZE_FOR}"
#: Same schedule shape, but the window opens long after the run ends —
#: the watchdog arms, the fault never fires.
NEVER_SPEC = "freeze:cam=1,at=9999,for=5"


def _config(**overrides):
    base = dict(
        policy="balb",
        horizon=5,
        n_horizons=8,
        warmup_s=15.0,
        train_duration_s=40.0,
        seed=0,
    )
    base.update(overrides)
    return PipelineConfig(**base)


def _counter_sum(result, name):
    return sum(
        m["value"] for m in result.metrics
        if m["kind"] == "counter" and m["name"] == name
    )


@pytest.fixture(scope="module")
def trained_s1():
    scenario = get_scenario("S1", seed=0)
    return scenario, train_models(scenario, _config())


@pytest.fixture(scope="module")
def clean_run(trained_s1):
    scenario, trained = trained_s1
    return run_policy(scenario, "balb", _config(), trained)


@pytest.fixture(scope="module")
def freeze_run(trained_s1):
    scenario, trained = trained_s1
    return run_policy(
        scenario, "balb",
        _config(faults=FREEZE_SPEC, trace=True),
        trained,
    )


def _health_frames(result):
    """Map health.* span name -> frames it fired on (via the span tree)."""
    by_id = {s.span_id: s for s in result.spans}

    def frame_of(span):
        node = span
        while node is not None and node.name != "frame":
            node = by_id.get(node.parent_id)
        assert node is not None, f"health span {span.name} outside a frame"
        return node.tags["frame"]

    frames = {}
    for span in result.spans:
        if span.name.startswith("health."):
            frames.setdefault(span.name, []).append(frame_of(span))
    return frames


class TestFreezeLifecycle:
    def test_run_completes_all_horizons(self, freeze_run):
        assert freeze_run.n_frames == 40

    def test_full_lifecycle_fires_exactly_once(self, freeze_run):
        assert _counter_sum(freeze_run, "health_suspects_total") == 1
        assert _counter_sum(freeze_run, "health_quarantines_total") == 1
        assert _counter_sum(freeze_run, "health_probations_total") == 1
        assert _counter_sum(freeze_run, "health_readmissions_total") == 1
        assert _counter_sum(freeze_run, "sensor_frozen_frames_total") == (
            FREEZE_FOR
        )

    def test_every_membership_change_refits(self, freeze_run):
        # Quarantine, probation entry, readmission: three membership
        # epochs, each re-fitting masks + candidate set over survivors.
        assert _counter_sum(freeze_run, "membership_refits_total") == 3
        (epoch,) = [
            m["value"] for m in freeze_run.metrics
            if m["name"] == "membership_epoch"
        ]
        assert epoch == 3

    def test_quarantine_lands_within_bounded_frames(self, freeze_run):
        cfg = HealthConfig()
        frames = _health_frames(freeze_run)
        (quarantine_frame,) = frames["health.quarantined"]
        # Token repetition is observable from the *second* frozen frame;
        # the streak thresholds bound the reaction from there.
        deadline = (
            FREEZE_AT + 1 + cfg.suspect_after + cfg.quarantine_after
        )
        assert FREEZE_AT < quarantine_frame <= deadline

    def test_readmission_follows_probation_after_fault_clears(
        self, freeze_run
    ):
        frames = _health_frames(freeze_run)
        (quarantine_frame,) = frames["health.quarantined"]
        (probation_frame,) = frames["health.probation"]
        (active_frame,) = frames["health.active"]
        assert quarantine_frame < probation_frame < active_frame
        assert probation_frame >= FREEZE_AT + FREEZE_FOR
        # Refit fires on the same frames as the membership edges.
        assert sorted(frames["health.refit"]) == sorted(
            [quarantine_frame, probation_frame, active_frame]
        )

    def test_quarantined_camera_is_fenced_then_restored(self, freeze_run):
        frames = _health_frames(freeze_run)
        (quarantine_frame,) = frames["health.quarantined"]
        (probation_frame,) = frames["health.probation"]
        # Transitions computed at the end of frame N take effect N+1.
        for record in freeze_run.frames:
            if quarantine_frame < record.frame_index <= probation_frame:
                assert 1 not in record.inference_ms  # R5: no work issued
        assert 1 in freeze_run.frames[-1].inference_ms  # readmitted

    def test_recall_survives_the_freeze(self, freeze_run, clean_run):
        assert freeze_run.object_recall() >= 0.85
        assert freeze_run.object_recall() >= (
            clean_run.object_recall() - 0.1
        )


class TestDefenseIsolation:
    def test_armed_watchdog_without_faults_changes_nothing(
        self, trained_s1, clean_run
    ):
        scenario, trained = trained_s1
        armed = run_policy(
            scenario, "balb", _config(faults=NEVER_SPEC), trained
        )
        # The watchdog ran every frame (scores exported) ...
        assert any(m["name"] == "health_score" for m in armed.metrics)
        # ... saw a healthy fleet ...
        assert _counter_sum(armed, "health_quarantines_total") == 0
        assert _counter_sum(armed, "health_suspects_total") == 0
        # ... and perturbed nothing: frame-for-frame identical results.
        assert pickle.dumps(armed.frames) == pickle.dumps(clean_run.frames)

    def test_disabled_defense_still_injects_the_fault(self, trained_s1):
        scenario, trained = trained_s1
        undefended = run_policy(
            scenario, "balb",
            _config(faults=FREEZE_SPEC, fleet_health=False),
            trained,
        )
        assert _counter_sum(
            undefended, "sensor_frozen_frames_total"
        ) == FREEZE_FOR
        assert _counter_sum(undefended, "health_quarantines_total") == 0


class TestDeterminism:
    def test_same_seed_defended_runs_are_identical(self, trained_s1,
                                                   freeze_run):
        scenario, trained = trained_s1
        again = run_policy(
            scenario, "balb",
            _config(faults=FREEZE_SPEC, trace=True),
            trained,
        )
        assert pickle.dumps(again.frames) == pickle.dumps(freeze_run.frames)
        strip = lambda r: [
            m for m in r.metrics if m["name"] != "frame_wall_ms"
        ]
        assert strip(again) == strip(freeze_run)
