"""Tests for the association baseline models and registries."""

import numpy as np
import pytest

from repro.association.baselines import (
    CLASSIFIER_FACTORIES,
    REGRESSOR_FACTORIES,
    HomographyBoxRegressor,
)
from repro.geometry.transforms import Homography
from repro.ml.base import Classifier, NotFittedError, Regressor


class TestRegistries:
    def test_classifier_registry_complete(self):
        assert set(CLASSIFIER_FACTORIES) == {
            "knn", "svm", "logistic", "decision-tree"
        }
        for factory in CLASSIFIER_FACTORIES.values():
            assert isinstance(factory(), Classifier)

    def test_regressor_registry_complete(self):
        assert set(REGRESSOR_FACTORIES) == {
            "knn", "homography", "linear", "ransac"
        }
        for factory in REGRESSOR_FACTORIES.values():
            assert isinstance(factory(), Regressor)

    def test_factories_return_fresh_instances(self):
        a = CLASSIFIER_FACTORIES["knn"]()
        b = CLASSIFIER_FACTORIES["knn"]()
        assert a is not b


class TestHomographyBoxRegressor:
    def planar_data(self, n=60, seed=0):
        """Centres related by a true homography, sizes scaled by 1.5."""
        rng = np.random.default_rng(seed)
        h = Homography(
            np.array([[1.1, 0.05, 20.0], [0.02, 0.95, -10.0], [1e-4, 0, 1.0]])
        )
        centers = rng.uniform(50, 700, (n, 2))
        sizes = rng.uniform(20, 80, (n, 2))
        mapped = h.apply_many(centers)
        x = np.hstack([centers, sizes, (sizes[:, :1] / sizes[:, 1:])])
        y = np.hstack([mapped, sizes * 1.5])
        return x, y

    def test_recovers_planar_mapping(self):
        x, y = self.planar_data()
        model = HomographyBoxRegressor().fit(x, y)
        pred = model.predict(x)
        assert np.abs(pred[:, :2] - y[:, :2]).mean() < 1.0
        assert np.abs(pred[:, 2:] - y[:, 2:]).mean() < 1.0

    def test_fails_gracefully_on_nonplanar_data(self):
        """Height-dependent offsets break the planar assumption; the fit
        still works but with visible error — the paper's Figure 11 story."""
        rng = np.random.default_rng(1)
        x, y = self.planar_data(seed=1)
        y = y.copy()
        y[:, 1] += rng.uniform(0, 60, len(y))  # object-height effect
        model = HomographyBoxRegressor().fit(x, y)
        err = np.abs(model.predict(x)[:, 1] - y[:, 1]).mean()
        assert err > 5.0

    def test_wrong_shapes_raise(self):
        with pytest.raises(ValueError):
            HomographyBoxRegressor().fit(np.zeros((10, 2)), np.zeros((10, 4)))
        with pytest.raises(ValueError):
            HomographyBoxRegressor().fit(np.zeros((10, 5)), np.zeros((10, 2)))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            HomographyBoxRegressor().predict(np.zeros((1, 5)))
