"""Tests for per-pair visibility/location models."""

import numpy as np
import pytest

from repro.association.pairwise import (
    PairwiseAssociator,
    default_classifier_factory,
    default_regressor_factory,
)
from repro.association.training import AssociationDataset
from repro.geometry.box import BBox


def synthetic_dataset(n=1500, seed=0):
    """Pair (0, 1): objects with cx < 500 are visible on camera 1 at a
    shifted location; others are not."""
    rng = np.random.default_rng(seed)
    ds = AssociationDataset()
    pair = ds.pair(0, 1)
    for _ in range(n):
        cx = rng.uniform(0, 1000)
        cy = rng.uniform(100, 600)
        w = rng.uniform(30, 80)
        h = w * 0.7
        src = BBox.from_xywh(cx, cy, w, h)
        if cx < 500:
            dst = BBox.from_xywh(cx + 200, cy - 50, w * 1.1, h * 1.1)
        else:
            dst = None
        pair.add(src, dst)
    return ds


class TestPairwiseAssociator:
    def test_visibility_prediction(self):
        assoc = PairwiseAssociator().fit(synthetic_dataset())
        visible = BBox.from_xywh(200, 300, 50, 35)
        hidden = BBox.from_xywh(800, 300, 50, 35)
        assert assoc.predict_visible(0, 1, visible)
        assert not assoc.predict_visible(0, 1, hidden)

    def test_location_prediction(self):
        assoc = PairwiseAssociator().fit(synthetic_dataset())
        src = BBox.from_xywh(200, 300, 50, 35)
        pred = assoc.predict_box(0, 1, src)
        assert pred is not None
        assert pred.center[0] == pytest.approx(400, abs=30)
        assert pred.center[1] == pytest.approx(250, abs=30)

    def test_predict_box_none_when_classified_invisible(self):
        assoc = PairwiseAssociator().fit(synthetic_dataset())
        hidden = BBox.from_xywh(900, 300, 50, 35)
        assert assoc.predict_box(0, 1, hidden) is None

    def test_unknown_pair_predicts_invisible(self):
        assoc = PairwiseAssociator().fit(synthetic_dataset())
        assert not assoc.predict_visible(5, 6, BBox.from_xywh(0, 0, 10, 10))
        assert assoc.model(5, 6) is None

    def test_constant_negative_labels(self):
        ds = AssociationDataset()
        pair = ds.pair(0, 1)
        for i in range(20):
            pair.add(BBox.from_xywh(i * 10, 100, 30, 20), None)
        assoc = PairwiseAssociator().fit(ds)
        assert not assoc.predict_visible(0, 1, BBox.from_xywh(50, 100, 30, 20))

    def test_constant_positive_labels(self):
        ds = AssociationDataset()
        pair = ds.pair(0, 1)
        for i in range(20):
            src = BBox.from_xywh(100 + i * 10, 100, 30, 20)
            pair.add(src, src.translate(50, 0))
        assoc = PairwiseAssociator().fit(ds)
        assert assoc.predict_visible(0, 1, BBox.from_xywh(150, 100, 30, 20))
        pred = assoc.predict_box(0, 1, BBox.from_xywh(150, 100, 30, 20))
        assert pred is not None

    def test_custom_factories_used(self):
        calls = []

        def spy_classifier():
            calls.append("cls")
            return default_classifier_factory()

        def spy_regressor():
            calls.append("reg")
            return default_regressor_factory()

        PairwiseAssociator(spy_classifier, spy_regressor).fit(synthetic_dataset())
        assert "cls" in calls and "reg" in calls

    def test_empty_pair_dataset(self):
        ds = AssociationDataset()
        ds.pair(0, 1)  # created but never populated
        assoc = PairwiseAssociator().fit(ds)
        assert not assoc.predict_visible(0, 1, BBox.from_xywh(0, 0, 10, 10))


class TestBatchEquivalence:
    """The vectorized batch APIs must agree with the per-box loops."""

    def probes(self, n=64, seed=7):
        rng = np.random.default_rng(seed)
        return [
            BBox.from_xywh(
                rng.uniform(0, 1000), rng.uniform(100, 600), 50, 35
            )
            for _ in range(n)
        ]

    def test_predict_visible_batch_matches_loop(self):
        assoc = PairwiseAssociator().fit(synthetic_dataset())
        model = assoc.model(0, 1)
        probes = self.probes()
        batch = model.predict_visible_batch(probes)
        loop = [model.predict_visible(b) for b in probes]
        assert batch.dtype == bool
        assert list(batch) == loop

    def test_predict_boxes_matches_loop(self):
        assoc = PairwiseAssociator().fit(synthetic_dataset())
        model = assoc.model(0, 1)
        probes = self.probes()
        batch = model.predict_boxes(probes)
        loop = [model.predict_box(b) for b in probes]
        assert len(batch) == len(loop)
        for got, want in zip(batch, loop):
            if want is None:
                # predict_box gates on visibility; predict_boxes does not,
                # so it may still return a regressed box here.
                continue
            assert got is not None
            assert got.as_tuple() == pytest.approx(want.as_tuple())

    def test_predict_visible_many_matches_loop(self):
        assoc = PairwiseAssociator().fit(synthetic_dataset())
        probes = self.probes()
        batch = assoc.predict_visible_many(0, 1, probes)
        loop = [assoc.predict_visible(0, 1, b) for b in probes]
        assert list(batch) == loop

    def test_predict_visible_many_unknown_pair_all_false(self):
        assoc = PairwiseAssociator().fit(synthetic_dataset())
        out = assoc.predict_visible_many(5, 6, self.probes(8))
        assert out.dtype == bool and not out.any()

    def test_batch_apis_on_constant_model(self):
        ds = AssociationDataset()
        pair = ds.pair(0, 1)
        for i in range(20):
            pair.add(BBox.from_xywh(i * 10, 100, 30, 20), None)
        model = PairwiseAssociator().fit(ds).model(0, 1)
        probes = self.probes(5)
        assert not model.predict_visible_batch(probes).any()
        assert model.predict_boxes(probes) == [None] * 5

    def test_batch_apis_on_empty_input(self):
        model = PairwiseAssociator().fit(synthetic_dataset()).model(0, 1)
        assert list(model.predict_visible_batch([])) == []
        assert model.predict_boxes([]) == []
