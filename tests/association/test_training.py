"""Tests for association dataset collection."""

import numpy as np
import pytest

from repro.association.training import (
    AssociationDataset,
    PairDataset,
    box_features,
    box_target,
    collect_association_dataset,
    target_to_box,
)
from repro.geometry.box import BBox
from repro.scenarios.aic21 import scenario_s2


class TestFeatureEncoding:
    def test_box_features_shape(self):
        feats = box_features(BBox.from_xywh(100, 50, 40, 20))
        assert feats == [100, 50, 40, 20, 2.0]

    def test_target_roundtrip(self):
        box = BBox.from_xywh(100, 50, 40, 20)
        assert target_to_box(np.array(box_target(box))) == box

    def test_target_to_box_clamps_degenerate_sizes(self):
        box = target_to_box(np.array([100.0, 50.0, -5.0, 0.0]))
        assert box.width >= 2.0 and box.height >= 2.0


class TestPairDataset:
    def test_add_positive_and_negative(self):
        ds = PairDataset(pair=(0, 1))
        ds.add(BBox.from_xywh(10, 10, 5, 5), BBox.from_xywh(20, 20, 6, 6))
        ds.add(BBox.from_xywh(30, 30, 5, 5), None)
        assert ds.n_samples == 2
        assert ds.n_positive == 1
        x, y = ds.classification_arrays()
        assert x.shape == (2, 5)
        assert list(y) == [1.0, 0.0]
        xr, yr = ds.regression_arrays()
        assert xr.shape == (1, 5) and yr.shape == (1, 4)


class TestCollect:
    def test_collects_from_scenario(self):
        scenario = scenario_s2(seed=3)
        world, rig = scenario.build()
        world.run(30.0, 0.1)
        dataset = collect_association_dataset(world, rig, duration_s=40.0)
        assert dataset.total_samples > 0
        # Ordered pairs in both directions.
        assert (0, 1) in dataset.pairs and (1, 0) in dataset.pairs

    def test_positive_rows_only_for_covisible(self):
        scenario = scenario_s2(seed=4)
        world, rig = scenario.build()
        world.run(30.0, 0.1)
        dataset = collect_association_dataset(world, rig, duration_s=40.0)
        for pair_ds in dataset.pairs.values():
            assert pair_ds.n_positive <= pair_ds.n_samples

    def test_invalid_durations_raise(self):
        scenario = scenario_s2(seed=5)
        world, rig = scenario.build()
        with pytest.raises(ValueError):
            collect_association_dataset(world, rig, duration_s=0.0)
        with pytest.raises(ValueError):
            collect_association_dataset(
                world, rig, duration_s=10.0, sample_interval_s=0.01, dt=0.1
            )

    def test_pair_accessor_creates_lazily(self):
        ds = AssociationDataset()
        pair = ds.pair(3, 7)
        assert pair.pair == (3, 7)
        assert ds.pair(3, 7) is pair
