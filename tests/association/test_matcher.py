"""Tests for cross-camera matching into global objects."""

import numpy as np
import pytest

from repro.association.matcher import (
    CrossCameraMatcher,
    GlobalObject,
    LocalObservation,
    association_quality,
)
from repro.association.pairwise import PairwiseAssociator
from repro.association.training import AssociationDataset
from repro.geometry.box import BBox


def shift_dataset(n=1500, seed=0, dx=200.0):
    """Pair (0,1) and (1,0): everything visible, shifted by +/- dx."""
    rng = np.random.default_rng(seed)
    ds = AssociationDataset()
    fwd = ds.pair(0, 1)
    back = ds.pair(1, 0)
    for _ in range(n):
        cx = rng.uniform(100, 800)
        cy = rng.uniform(100, 600)
        w = rng.uniform(30, 80)
        src = BBox.from_xywh(cx, cy, w, w * 0.7)
        dst = src.translate(dx, 0)
        fwd.add(src, dst)
        back.add(dst, src)
    return ds


def fitted_matcher(seed=0):
    assoc = PairwiseAssociator().fit(shift_dataset(seed=seed))
    return CrossCameraMatcher(assoc, iou_threshold=0.2)


def obs(cam, tid, cx, cy, w=50.0, gt=-1):
    return LocalObservation(
        camera_id=cam, track_id=tid, bbox=BBox.from_xywh(cx, cy, w, w * 0.7),
        gt_id=gt,
    )


class TestMatcher:
    def test_simple_merge(self):
        matcher = fitted_matcher()
        observations = {
            0: [obs(0, 10, 300, 300, gt=1)],
            1: [obs(1, 20, 500, 300, gt=1)],  # shifted by +200
        }
        globs = matcher.associate(observations)
        assert len(globs) == 1
        assert globs[0].coverage == [0, 1]

    def test_unrelated_objects_stay_separate(self):
        matcher = fitted_matcher()
        observations = {
            0: [obs(0, 10, 300, 300, gt=1)],
            1: [obs(1, 20, 900, 600, gt=2)],  # nowhere near the mapping
        }
        globs = matcher.associate(observations)
        assert len(globs) == 2

    def test_multiple_objects_matched_one_to_one(self):
        matcher = fitted_matcher()
        observations = {
            0: [obs(0, 1, 200, 200, gt=1), obs(0, 2, 400, 400, gt=2)],
            1: [obs(1, 3, 400, 200, gt=1), obs(1, 4, 600, 400, gt=2)],
        }
        globs = matcher.associate(observations)
        assert len(globs) == 2
        correct, wrong, missed = association_quality(globs)
        assert correct == 2 and wrong == 0 and missed == 0

    def test_singletons_survive(self):
        matcher = fitted_matcher()
        observations = {0: [obs(0, 1, 300, 300, gt=5)], 1: []}
        globs = matcher.associate(observations)
        assert len(globs) == 1
        assert globs[0].coverage == [0]

    def test_empty_input(self):
        matcher = fitted_matcher()
        assert matcher.associate({0: [], 1: []}) == []

    def test_global_ids_dense_and_sorted(self):
        matcher = fitted_matcher()
        observations = {
            0: [obs(0, 1, 200, 200, gt=1), obs(0, 2, 600, 500, gt=2)],
            1: [obs(1, 3, 400, 200, gt=1)],
        }
        globs = matcher.associate(observations)
        assert [g.global_id for g in globs] == list(range(len(globs)))

    def test_box_on_accessor(self):
        g = GlobalObject(global_id=0, members={0: obs(0, 1, 100, 100)})
        assert g.box_on(0) is not None
        assert g.box_on(1) is None

    def test_invalid_threshold_raises(self):
        assoc = PairwiseAssociator().fit(shift_dataset())
        with pytest.raises(ValueError):
            CrossCameraMatcher(assoc, iou_threshold=1.5)


class TestAssociationQuality:
    def test_wrong_merge_counted(self):
        g = GlobalObject(
            global_id=0,
            members={0: obs(0, 1, 0, 0, gt=1), 1: obs(1, 2, 0, 0, gt=2)},
        )
        correct, wrong, missed = association_quality([g])
        assert correct == 0 and wrong == 1

    def test_split_object_counted_missed(self):
        g1 = GlobalObject(global_id=0, members={0: obs(0, 1, 0, 0, gt=1)})
        g2 = GlobalObject(global_id=1, members={1: obs(1, 2, 0, 0, gt=1)})
        correct, wrong, missed = association_quality([g1, g2])
        assert missed == 1

    def test_false_positive_never_correct(self):
        g = GlobalObject(
            global_id=0,
            members={0: obs(0, 1, 0, 0, gt=-1), 1: obs(1, 2, 0, 0, gt=-1)},
        )
        correct, wrong, _ = association_quality([g])
        assert correct == 0 and wrong == 1
