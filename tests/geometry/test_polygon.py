"""Unit tests for convex polygons and clipping."""

import math

import pytest

from repro.geometry.polygon import ConvexPolygon


def square(x1=0.0, y1=0.0, x2=10.0, y2=10.0):
    return ConvexPolygon.rectangle(x1, y1, x2, y2)


class TestConstruction:
    def test_area_of_rectangle(self):
        assert square().area == pytest.approx(100.0)

    def test_winding_normalized(self):
        cw = ConvexPolygon(((0, 0), (0, 10), (10, 10), (10, 0)))
        ccw = ConvexPolygon(((0, 0), (10, 0), (10, 10), (0, 10)))
        assert cw.area == pytest.approx(ccw.area)
        assert cw.contains(5, 5) and ccw.contains(5, 5)

    def test_too_few_vertices_raises(self):
        with pytest.raises(ValueError):
            ConvexPolygon(((0, 0), (1, 1)))

    def test_rectangle_invalid_corners_raise(self):
        with pytest.raises(ValueError):
            ConvexPolygon.rectangle(10, 0, 0, 10)

    def test_centroid(self):
        assert square().centroid == pytest.approx((5.0, 5.0))


class TestContains:
    def test_interior_and_boundary(self):
        poly = square()
        assert poly.contains(5, 5)
        assert poly.contains(0, 0)
        assert poly.contains(10, 5)

    def test_exterior(self):
        poly = square()
        assert not poly.contains(-1, 5)
        assert not poly.contains(5, 10.1)


class TestIntersection:
    def test_full_overlap(self):
        inter = square().intersect(square())
        assert inter is not None
        assert inter.area == pytest.approx(100.0)

    def test_partial_overlap_area(self):
        a = square(0, 0, 10, 10)
        b = square(5, 5, 15, 15)
        inter = a.intersect(b)
        assert inter is not None
        assert inter.area == pytest.approx(25.0)

    def test_disjoint_returns_none(self):
        assert square(0, 0, 5, 5).intersect(square(6, 6, 10, 10)) is None

    def test_contained_polygon(self):
        outer = square(0, 0, 20, 20)
        inner = square(5, 5, 10, 10)
        inter = outer.intersect(inner)
        assert inter is not None
        assert inter.area == pytest.approx(inner.area)

    def test_intersection_commutative_area(self):
        a = square(0, 0, 10, 10)
        b = ConvexPolygon(((3, -2), (14, 4), (6, 12)))
        ab = a.overlap_area(b)
        ba = b.overlap_area(a)
        assert ab == pytest.approx(ba)
        assert 0 < ab < min(a.area, b.area)

    def test_overlap_area_bounded_by_min_area(self):
        a = square(0, 0, 8, 8)
        b = square(4, 4, 20, 20)
        assert a.overlap_area(b) <= min(a.area, b.area) + 1e-9

    def test_edge_touching_returns_none_or_zero(self):
        a = square(0, 0, 5, 5)
        b = square(5, 0, 10, 5)
        inter = a.intersect(b)
        assert inter is None or inter.area < 1e-9


class TestSector:
    def test_sector_contains_points_on_axis(self):
        sector = ConvexPolygon.sector((0, 0), 0.0, math.pi / 4, 50.0)
        assert sector.contains(10, 0)
        assert sector.contains(30, 10)
        assert not sector.contains(-5, 0)
        assert not sector.contains(0, 40)

    def test_sector_invalid_params_raise(self):
        with pytest.raises(ValueError):
            ConvexPolygon.sector((0, 0), 0.0, math.pi, 50.0)
        with pytest.raises(ValueError):
            ConvexPolygon.sector((0, 0), 0.0, math.pi / 4, -1.0)

    def test_sector_area_close_to_circular_sector(self):
        half = math.pi / 6
        radius = 40.0
        sector = ConvexPolygon.sector((0, 0), 0.5, half, radius, arc_segments=32)
        expected = half * radius**2  # area of a circular sector of 2*half
        assert sector.area == pytest.approx(expected, rel=0.02)

    def test_bounding_box(self):
        poly = square(2, 3, 8, 9)
        assert poly.bounding_box() == (2, 3, 8, 9)
