"""Unit tests for bounding boxes, IoU and size quantization."""


import pytest

from repro.geometry.box import (
    DEFAULT_SIZE_SET,
    BBox,
    pairwise_iou_matrix,
    quantize_size,
    quantized_region,
)


class TestBBoxBasics:
    def test_properties(self):
        box = BBox(10, 20, 30, 60)
        assert box.width == 20
        assert box.height == 40
        assert box.area == 800
        assert box.center == (20, 40)
        assert box.long_side == 40

    def test_invalid_box_raises(self):
        with pytest.raises(ValueError):
            BBox(10, 0, 5, 10)
        with pytest.raises(ValueError):
            BBox(0, 10, 5, 5)

    def test_from_xywh_roundtrip(self):
        box = BBox.from_xywh(50, 60, 20, 10)
        assert box.as_xywh() == (50, 60, 20, 10)

    def test_from_xywh_clamps_negative_size(self):
        box = BBox.from_xywh(5, 5, -10, -2)
        assert box.width == 0
        assert box.height == 0

    def test_from_points(self):
        box = BBox.from_points([(1, 5), (4, 2), (3, 3)])
        assert box.as_tuple() == (1, 2, 4, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BBox.from_points([])

    def test_immutability(self):
        box = BBox(0, 0, 1, 1)
        with pytest.raises(Exception):
            box.x1 = 5


class TestIoU:
    def test_identical_boxes(self):
        box = BBox(0, 0, 10, 10)
        assert box.iou(box) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert BBox(0, 0, 5, 5).iou(BBox(10, 10, 20, 20)) == 0.0

    def test_touching_boxes_zero_iou(self):
        assert BBox(0, 0, 5, 5).iou(BBox(5, 0, 10, 5)) == 0.0

    def test_half_overlap(self):
        a = BBox(0, 0, 10, 10)
        b = BBox(5, 0, 15, 10)
        # intersection 50, union 150
        assert a.iou(b) == pytest.approx(1 / 3)

    def test_symmetry(self):
        a = BBox(0, 0, 10, 10)
        b = BBox(3, 4, 12, 9)
        assert a.iou(b) == pytest.approx(b.iou(a))

    def test_contained_box(self):
        outer = BBox(0, 0, 10, 10)
        inner = BBox(2, 2, 4, 4)
        assert outer.iou(inner) == pytest.approx(inner.area / outer.area)

    def test_degenerate_box_iou_zero(self):
        point = BBox(5, 5, 5, 5)
        assert point.iou(BBox(0, 0, 10, 10)) == 0.0


class TestBoxOps:
    def test_expand(self):
        box = BBox(10, 10, 20, 20).expand(5)
        assert box.as_tuple() == (5, 5, 25, 25)

    def test_expand_negative_collapses_gracefully(self):
        box = BBox(10, 10, 20, 20).expand(-10)
        assert box.is_empty()

    def test_scale(self):
        box = BBox.from_xywh(10, 10, 4, 6).scale(2.0)
        assert box.as_xywh() == (10, 10, 8, 12)

    def test_scale_negative_raises(self):
        with pytest.raises(ValueError):
            BBox(0, 0, 1, 1).scale(-1)

    def test_translate(self):
        assert BBox(0, 0, 2, 2).translate(3, -1).as_tuple() == (3, -1, 5, 1)

    def test_clip_inside_noop(self):
        box = BBox(10, 10, 20, 20)
        assert box.clip(100, 100) == box

    def test_clip_partially_outside(self):
        box = BBox(-5, -5, 10, 10).clip(100, 100)
        assert box.as_tuple() == (0, 0, 10, 10)

    def test_clip_fully_outside_is_empty(self):
        assert BBox(200, 200, 250, 250).clip(100, 100).is_empty()

    def test_union_box(self):
        u = BBox(0, 0, 5, 5).union_box(BBox(3, 3, 10, 8))
        assert u.as_tuple() == (0, 0, 10, 8)

    def test_contains_point_and_box(self):
        box = BBox(0, 0, 10, 10)
        assert box.contains_point(5, 5)
        assert box.contains_point(0, 0)  # boundary
        assert not box.contains_point(11, 5)
        assert box.contains_box(BBox(1, 1, 9, 9))
        assert not box.contains_box(BBox(5, 5, 11, 11))

    def test_l1_distance(self):
        a = BBox(0, 0, 10, 10)
        b = BBox(2, 2, 12, 12)
        assert a.l1_distance(b) == pytest.approx(2.0)

    def test_center_distance(self):
        a = BBox.from_xywh(0, 0, 2, 2)
        b = BBox.from_xywh(3, 4, 2, 2)
        assert a.center_distance(b) == pytest.approx(5.0)


class TestQuantization:
    def test_quantize_exact_boundaries(self):
        assert quantize_size(64) == 64
        assert quantize_size(64.5) == 128
        assert quantize_size(1) == 64

    def test_quantize_above_max_downsamples(self):
        assert quantize_size(9999) == max(DEFAULT_SIZE_SET)

    def test_quantize_custom_set(self):
        assert quantize_size(33, size_set=(32, 96)) == 96

    def test_quantize_empty_set_raises(self):
        with pytest.raises(ValueError):
            quantize_size(10, size_set=())

    def test_quantized_region_square_and_centred(self):
        box = BBox.from_xywh(100, 100, 50, 30)
        region, size = quantized_region(box, margin=8)
        assert size == 128  # 50 + 16 margin -> 66 -> 128
        assert region.width == pytest.approx(128)
        assert region.height == pytest.approx(128)
        assert region.center == pytest.approx((100, 100))

    def test_quantized_region_contains_object(self):
        box = BBox.from_xywh(100, 100, 40, 40)
        region, _ = quantized_region(box)
        assert region.contains_box(box)


class TestPairwiseIoU:
    def test_matrix_shape_and_values(self):
        a = [BBox(0, 0, 10, 10), BBox(20, 20, 30, 30)]
        b = [BBox(0, 0, 10, 10)]
        mat = pairwise_iou_matrix(a, b)
        assert len(mat) == 2 and len(mat[0]) == 1
        assert mat[0][0] == pytest.approx(1.0)
        assert mat[1][0] == 0.0

    def test_empty_inputs(self):
        assert pairwise_iou_matrix([], []) == []
