"""Property-based tests for the geometry substrate."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.box import DEFAULT_SIZE_SET, BBox, quantize_size, quantized_region
from repro.geometry.polygon import ConvexPolygon

coords = st.floats(-1000, 1000, allow_nan=False, allow_infinity=False)
sizes = st.floats(0.1, 500, allow_nan=False, allow_infinity=False)


@st.composite
def boxes(draw):
    cx = draw(coords)
    cy = draw(coords)
    w = draw(sizes)
    h = draw(sizes)
    return BBox.from_xywh(cx, cy, w, h)


class TestBoxProperties:
    @given(boxes(), boxes())
    def test_iou_in_unit_interval(self, a, b):
        iou = a.iou(b)
        assert 0.0 <= iou <= 1.0 + 1e-12

    @given(boxes(), boxes())
    def test_iou_symmetric(self, a, b):
        assert abs(a.iou(b) - b.iou(a)) < 1e-9

    @given(boxes())
    def test_self_iou_is_one(self, a):
        assert a.iou(a) == 1.0

    @given(boxes(), st.floats(-200, 200), st.floats(-200, 200))
    def test_iou_translation_invariant(self, a, dx, dy):
        b = BBox.from_xywh(a.center[0] + 10, a.center[1], a.width, a.height)
        before = a.iou(b)
        after = a.translate(dx, dy).iou(b.translate(dx, dy))
        assert abs(before - after) < 1e-6

    @given(boxes(), boxes())
    def test_intersection_bounded(self, a, b):
        inter = a.intersection(b)
        assert -1e-9 <= inter <= min(a.area, b.area) + 1e-6

    @given(boxes(), boxes())
    def test_union_box_contains_both(self, a, b):
        u = a.union_box(b)
        assert u.contains_box(a)
        assert u.contains_box(b)

    @given(boxes(), st.floats(0.1, 300))
    def test_clip_stays_inside_frame(self, a, frame):
        clipped = a.clip(frame, frame)
        assert clipped.x1 >= 0 and clipped.y1 >= 0
        assert clipped.x2 <= frame and clipped.y2 <= frame

    @given(boxes(), st.floats(0, 50))
    def test_expand_contains_original(self, a, margin):
        assert a.expand(margin).contains_box(a)


class TestQuantizeProperties:
    @given(st.floats(0.1, 2000))
    def test_quantize_returns_member(self, extent):
        assert quantize_size(extent) in DEFAULT_SIZE_SET

    @given(st.floats(0.1, float(max(DEFAULT_SIZE_SET))))
    def test_quantize_never_shrinks_below_max(self, extent):
        assert quantize_size(extent) >= extent

    @given(st.floats(0.1, 2000), st.floats(0.1, 2000))
    def test_quantize_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert quantize_size(lo) <= quantize_size(hi)

    @given(boxes())
    def test_quantized_region_is_square_of_member_size(self, box):
        region, size = quantized_region(box)
        assert size in DEFAULT_SIZE_SET
        assert abs(region.width - size) < 1e-6
        assert abs(region.height - size) < 1e-6


@st.composite
def rects(draw):
    x1 = draw(st.floats(-100, 90))
    y1 = draw(st.floats(-100, 90))
    w = draw(st.floats(1, 100))
    h = draw(st.floats(1, 100))
    return ConvexPolygon.rectangle(x1, y1, x1 + w, y1 + h)


class TestPolygonProperties:
    @settings(max_examples=50)
    @given(rects(), rects())
    def test_overlap_area_bounded(self, a, b):
        inter = a.overlap_area(b)
        assert -1e-9 <= inter <= min(a.area, b.area) + 1e-6

    @settings(max_examples=50)
    @given(rects(), rects())
    def test_overlap_symmetric(self, a, b):
        assert abs(a.overlap_area(b) - b.overlap_area(a)) < 1e-6

    @settings(max_examples=50)
    @given(rects())
    def test_self_overlap_is_area(self, a):
        assert abs(a.overlap_area(a) - a.area) < 1e-6

    @settings(max_examples=50)
    @given(rects())
    def test_centroid_inside(self, a):
        cx, cy = a.centroid
        assert a.contains(cx, cy)

    @settings(max_examples=50)
    @given(rects(), rects())
    def test_rect_intersection_matches_box_formula(self, a, b):
        (ax1, ay1, ax2, ay2) = a.bounding_box()
        (bx1, by1, bx2, by2) = b.bounding_box()
        iw = max(0.0, min(ax2, bx2) - max(ax1, bx1))
        ih = max(0.0, min(ay2, by2) - max(ay1, by1))
        assert abs(a.overlap_area(b) - iw * ih) < 1e-6
