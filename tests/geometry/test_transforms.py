"""Unit tests for homography estimation and application."""

import numpy as np
import pytest

from repro.geometry.transforms import Homography


def random_homography(rng):
    mat = np.eye(3) + rng.normal(0, 0.1, (3, 3))
    mat[2, :2] *= 0.001  # keep perspective mild so points stay finite
    return Homography(mat)


class TestApply:
    def test_identity(self):
        h = Homography.identity()
        assert h.apply(3.0, 4.0) == pytest.approx((3.0, 4.0))

    def test_translation(self):
        h = Homography(np.array([[1, 0, 5], [0, 1, -2], [0, 0, 1]], float))
        assert h.apply(1.0, 1.0) == pytest.approx((6.0, -1.0))

    def test_apply_many_matches_apply(self):
        rng = np.random.default_rng(0)
        h = random_homography(rng)
        pts = rng.random((10, 2)) * 100
        many = h.apply_many(pts)
        for p, m in zip(pts, many):
            assert h.apply(*p) == pytest.approx(tuple(m))

    def test_scale_normalization(self):
        h1 = Homography(np.eye(3))
        h2 = Homography(np.eye(3) * 7.0)
        assert np.allclose(h1.matrix, h2.matrix)

    def test_bad_shapes_raise(self):
        with pytest.raises(ValueError):
            Homography(np.eye(2))
        h = Homography.identity()
        with pytest.raises(ValueError):
            h.apply_many(np.zeros((3, 3)))

    def test_point_at_infinity_raises(self):
        h = Homography(np.array([[1, 0, 0], [0, 1, 0], [0.5, 0, 1]], float))
        with pytest.raises(ValueError):
            h.apply(-2.0, 0.0)  # w = 0.5 * (-2) + 1 = 0

    def test_vanishing_scale_element_raises(self):
        with pytest.raises(ValueError):
            Homography(np.array([[1, 0, 0], [0, 1, 0], [0, 0, 1e-20]], float))


class TestInverseCompose:
    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        h = random_homography(rng)
        inv = h.inverse()
        pts = rng.random((5, 2)) * 50
        round_trip = inv.apply_many(h.apply_many(pts))
        assert np.allclose(round_trip, pts, atol=1e-8)

    def test_compose(self):
        t1 = Homography(np.array([[1, 0, 3], [0, 1, 0], [0, 0, 1]], float))
        t2 = Homography(np.array([[1, 0, 0], [0, 1, 4], [0, 0, 1]], float))
        composed = t2.compose(t1)
        assert composed.apply(0.0, 0.0) == pytest.approx((3.0, 4.0))


class TestFit:
    def test_exact_recovery(self):
        rng = np.random.default_rng(2)
        h = random_homography(rng)
        src = rng.random((12, 2)) * 200
        dst = h.apply_many(src)
        fitted = Homography.fit([tuple(p) for p in src], [tuple(p) for p in dst])
        assert np.allclose(fitted.apply_many(src), dst, atol=1e-6)

    def test_minimum_four_points(self):
        src = [(0, 0), (1, 0), (1, 1), (0, 1)]
        dst = [(0, 0), (2, 0), (2, 2), (0, 2)]
        fitted = Homography.fit(src, dst)
        assert fitted.apply(0.5, 0.5) == pytest.approx((1.0, 1.0))

    def test_too_few_points_raise(self):
        with pytest.raises(ValueError):
            Homography.fit([(0, 0), (1, 0), (1, 1)], [(0, 0), (1, 0), (1, 1)])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Homography.fit([(0, 0)] * 4, [(0, 0)] * 5)

    def test_noisy_fit_reasonable(self):
        rng = np.random.default_rng(3)
        h = random_homography(rng)
        src = rng.random((50, 2)) * 300
        dst = h.apply_many(src) + rng.normal(0, 0.5, (50, 2))
        fitted = Homography.fit([tuple(p) for p in src], [tuple(p) for p in dst])
        err = np.abs(fitted.apply_many(src) - h.apply_many(src)).mean()
        assert err < 1.0
