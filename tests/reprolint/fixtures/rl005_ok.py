"""Fixture: registered obs names only — no RL005 findings.

Linted with NameSets of span {"frame"}, metric {"frames_total"},
prefixes {"fault."}.
"""


def record(tracer, metrics, kind, flag):
    with tracer.span("frame"):
        pass
    metrics.counter("frames_total").inc()
    metrics.counter(name="frames_total").inc()
    metrics.counter("frames_total" if flag else "frames_total").inc()
    with tracer.span("fault." + kind):
        pass
    with tracer.span():  # zero-arg overload takes no name
        pass
