"""Fixture: RNG done right — explicit Generators, seeded streams."""

import numpy as np


def jitter(seed):
    rng = np.random.default_rng(seed)
    child = np.random.default_rng(np.random.SeedSequence(seed))
    assert isinstance(rng, np.random.Generator)
    return rng.normal(), child.integers(0, 10)
