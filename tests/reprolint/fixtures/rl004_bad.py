"""Fixture: unseeded default_rng calls. Each call must trip RL004."""

import numpy as np
from numpy.random import default_rng


def fresh_entropy():
    a = np.random.default_rng()  # line 8: no seed -> OS entropy
    b = default_rng()  # line 9: bare name, still unseeded
    c = np.random.default_rng(None)  # line 10: explicit None is the same
    return a, b, c
