"""Fixture: process fan-out outside the harness. Every marked line trips RL007."""

import multiprocessing  # line 3
import multiprocessing.pool  # line 4
import concurrent.futures
import os

from multiprocessing import get_context  # line 8
from concurrent.futures import ProcessPoolExecutor  # line 9


def rogue_pool(jobs):
    with ProcessPoolExecutor(max_workers=4):  # import already flagged
        pass
    with concurrent.futures.ProcessPoolExecutor():  # line 15: attribute use
        pass
    pid = os.fork()  # line 17
    return pid
