"""Fixture: determinism-safe alternatives to the RL002 sources."""

import hashlib


def stable_key(fields):
    digest = hashlib.sha256(repr(sorted(fields)).encode()).hexdigest()
    return digest


def modeled_clock(frame_index, frame_interval_ms):
    return frame_index * frame_interval_ms
