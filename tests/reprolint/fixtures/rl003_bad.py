"""Fixture: unfrozen wire dataclasses. Every class here must trip RL003."""

from dataclasses import dataclass


@dataclass
class BareMessage:  # line 7 region: bare @dataclass
    camera_id: int


@dataclass(frozen=False)
class ExplicitlyThawed:
    frame_index: int


@dataclass(order=True)
class OrderedButMutable:
    priority: int
