"""Fixture: nondeterminism sources. Every marked line must trip RL002."""

import os
import time
import uuid
from datetime import datetime

import secrets  # line 8: OS entropy import


def stamp():
    a = time.time()  # line 12: timestamp
    b = datetime.now()  # line 13: timestamp
    c = time.perf_counter()  # line 14: wallclock
    d = uuid.uuid4()  # line 15: entropy
    e = os.urandom(8)  # line 16: entropy
    f = hash(("env", "dependent"))  # line 17: salted hash
    return a, b, c, d, e, f, secrets
