"""Fixture: immutable defaults and the None idiom — no RL006 findings."""


def none_idiom(items=None):
    if items is None:
        items = []
    return items


def immutable_defaults(pair=(1, 2), name="x", flags=frozenset()):
    return pair, name, flags
