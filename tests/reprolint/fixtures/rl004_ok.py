"""Fixture: seeded default_rng calls — no RL004 findings."""

import numpy as np


def seeded(config_seed):
    a = np.random.default_rng(config_seed)
    b = np.random.default_rng(0)
    c = np.random.default_rng(seed=config_seed + 1)
    d = np.random.default_rng(np.random.SeedSequence(config_seed))
    return a, b, c, d
