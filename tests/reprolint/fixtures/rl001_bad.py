"""Fixture: global-state RNG use. Every marked line must trip RL001."""

import random  # line 3: stdlib random import
from random import choice  # line 4: from-import

import numpy as np


def jitter():
    a = np.random.rand(3)  # line 10: global numpy RNG
    b = np.random.randint(0, 10)  # line 11: global numpy RNG
    c = random.random()
    return a, b, c, choice([1, 2])
