"""Fixture: mutable default arguments. Every marked line trips RL006."""

from collections import defaultdict


def list_default(items=[]):  # line 6
    return items


def dict_default(mapping={}):  # line 10
    return mapping


def call_default(seen=set(), extra=defaultdict(list)):  # line 14: two hits
    return seen, extra


def kwonly_default(*, acc=[]):  # line 18
    return acc


adder = lambda x, acc=[]: acc + [x]  # line 22: lambda default
