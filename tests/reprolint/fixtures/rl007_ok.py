"""Fixture: thread pools and the harness API are fine — no RL007 findings."""

from concurrent.futures import ThreadPoolExecutor

from repro.experiments.parallel import run_jobs


def harness_fanout(jobs, workers):
    return run_jobs(jobs, workers)


def thread_pool(fns):
    with ThreadPoolExecutor(max_workers=2) as pool:
        return [f.result() for f in [pool.submit(fn) for fn in fns]]
