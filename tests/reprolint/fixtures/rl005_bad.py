"""Fixture: unregistered / dynamic obs names. Marked lines trip RL005.

The test lints this with a NameSets of span {"frame"}, metric
{"frames_total"}, prefixes {"fault."}.
"""


def record(tracer, metrics, kind):
    with tracer.span("frame_typo"):  # line 9: unregistered span name
        pass
    metrics.counter("frames_totall").inc()  # line 11: metric typo
    metrics.counter("frames_total" if kind else "nope").inc()  # line 12
    with tracer.span("oops." + kind):  # line 13: unregistered prefix
        pass
    with tracer.span(f"dyn.{kind}"):  # line 15: not a literal at all
        pass
