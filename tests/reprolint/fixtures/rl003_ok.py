"""Fixture: frozen dataclasses and plain classes — no RL003 findings."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FrozenMessage:
    camera_id: int


@dataclass(frozen=True, order=True)
class FrozenOrdered:
    priority: int


class PlainClass:
    pass
