# Fixture: deliberately unparseable (RL000).
def broken(:
    pass
