"""Fixture-driven tests: every RL rule fires on its bad fixture and
stays quiet on its good one.

Fixtures live in ``tests/reprolint/fixtures`` and are linted via
:func:`lint_source` under a *virtual* path inside ``src/repro`` — the
engine anchors scope matching on the reported path, not the on-disk
location, so the intentional violations never pollute a real lint run
(the directory name ``fixtures`` is also excluded from file walks).
"""

from pathlib import Path

import pytest

from tools.reprolint import Config, NameSets, lint_source, rule_by_code
from tools.reprolint.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures"

#: NameSets the RL005 fixtures are written against.
TEST_NAMES = NameSets(
    span_names=frozenset({"frame"}),
    metric_names=frozenset({"frames_total"}),
    span_prefixes=frozenset({"fault."}),
)

CONFIG = Config(rl005_names=TEST_NAMES)

#: Virtual paths that put a buffer in each rule's scope.
IN_SCOPE = {
    "RL001": "src/repro/virtual_fixture.py",
    "RL002": "src/repro/virtual_fixture.py",
    "RL003": "src/repro/net/messages.py",
    "RL004": "src/repro/virtual_fixture.py",
    "RL005": "src/repro/virtual_fixture.py",
    "RL006": "src/repro/virtual_fixture.py",
    "RL007": "src/repro/virtual_fixture.py",
}

RULE_CODES = [rule.code for rule in ALL_RULES]


def read_fixture(name):
    return (FIXTURES / name).read_text()


def line_of(source, needle):
    """1-based line of the first source line containing ``needle``."""
    for lineno, text in enumerate(source.splitlines(), start=1):
        if needle in text:
            return lineno
    raise AssertionError(f"fixture does not contain {needle!r}")


def lint_fixture(name, code, path=None):
    source = read_fixture(name)
    findings = lint_source(
        source,
        path or IN_SCOPE[code],
        CONFIG,
        rules=[rule_by_code(code)],
    )
    return source, findings


class TestBadFixturesFail:
    """Each rule is demonstrated by at least one failing fixture."""

    @pytest.mark.parametrize("code", RULE_CODES)
    def test_bad_fixture_produces_findings(self, code):
        _, findings = lint_fixture(f"{code.lower()}_bad.py", code)
        assert findings, f"{code} bad fixture produced no findings"
        assert {f.code for f in findings} == {code}
        assert all(f.severity == "error" for f in findings)

    @pytest.mark.parametrize("code", RULE_CODES)
    def test_good_fixture_is_clean(self, code):
        _, findings = lint_fixture(f"{code.lower()}_ok.py", code)
        assert findings == []


class TestRL001:
    def test_flags_each_global_rng_use(self):
        source, findings = lint_fixture("rl001_bad.py", "RL001")
        lines = {f.line for f in findings}
        assert line_of(source, "import random") in lines
        assert line_of(source, "from random import choice") in lines
        assert line_of(source, "np.random.rand(3)") in lines
        assert line_of(source, "np.random.randint(0, 10)") in lines

    def test_out_of_scope_path_not_linted(self):
        _, findings = lint_fixture(
            "rl001_bad.py", "RL001", path="examples/outside.py"
        )
        assert findings == []


class TestRL002:
    def test_flags_every_source_kind(self):
        source, findings = lint_fixture("rl002_bad.py", "RL002")
        lines = {f.line for f in findings}
        for needle in (
            "import secrets",
            "time.time()",
            "datetime.now()",
            "time.perf_counter()",
            "uuid.uuid4()",
            "os.urandom(8)",
            'hash(("env", "dependent"))',
        ):
            assert line_of(source, needle) in lines, needle

    def test_wallclock_allowlist_only_unflags_wallclock(self):
        source, findings = lint_fixture(
            "rl002_bad.py", "RL002", path="src/repro/obs/trace.py"
        )
        lines = {f.line for f in findings}
        assert line_of(source, "time.perf_counter()") not in lines
        assert line_of(source, "time.time()") in lines
        assert line_of(source, "uuid.uuid4()") in lines

    def test_timestamp_allowlist_only_unflags_timestamps(self):
        source, findings = lint_fixture(
            "rl002_bad.py", "RL002", path="src/repro/cli.py"
        )
        lines = {f.line for f in findings}
        assert line_of(source, "time.time()") not in lines
        assert line_of(source, "datetime.now()") not in lines
        assert line_of(source, "time.perf_counter()") in lines
        assert line_of(source, "os.urandom(8)") in lines


class TestRL003:
    def test_each_unfrozen_dataclass_flagged(self):
        source, findings = lint_fixture("rl003_bad.py", "RL003")
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        for name in ("BareMessage", "ExplicitlyThawed", "OrderedButMutable"):
            assert name in messages

    def test_rule_limited_to_wire_modules(self):
        _, findings = lint_fixture(
            "rl003_bad.py", "RL003", path="src/repro/analysis.py"
        )
        assert findings == []


class TestRL004:
    def test_unseeded_calls_flagged(self):
        source, findings = lint_fixture("rl004_bad.py", "RL004")
        lines = {f.line for f in findings}
        assert line_of(source, "np.random.default_rng()  #") in lines
        assert line_of(source, "b = default_rng()") in lines
        assert line_of(source, "np.random.default_rng(None)") in lines
        assert len(findings) == 3


class TestRL005:
    def test_unregistered_and_dynamic_names_flagged(self):
        source, findings = lint_fixture("rl005_bad.py", "RL005")
        lines = {f.line for f in findings}
        for needle in (
            '"frame_typo"',
            '"frames_totall"',
            'else "nope"',
            '"oops." + kind',
            'f"dyn.{kind}"',
        ):
            assert line_of(source, needle) in lines, needle

    def test_registered_literals_ternaries_and_prefixes_pass(self):
        _, findings = lint_fixture("rl005_ok.py", "RL005")
        assert findings == []


class TestRL006:
    def test_each_mutable_default_flagged(self):
        source, findings = lint_fixture("rl006_bad.py", "RL006")
        lines = [f.line for f in findings]
        assert line_of(source, "items=[]") in lines
        assert line_of(source, "mapping={}") in lines
        assert line_of(source, "kwonly_default") in lines
        assert line_of(source, "lambda x, acc=[]") in lines
        # seen=set() and extra=defaultdict(list) are two findings on one line
        assert lines.count(line_of(source, "call_default")) == 2
        assert len(findings) == 6


class TestRL007:
    def test_each_process_fanout_flagged(self):
        source, findings = lint_fixture("rl007_bad.py", "RL007")
        lines = {f.line for f in findings}
        for needle in (
            "import multiprocessing  #",
            "import multiprocessing.pool",
            "from multiprocessing import get_context",
            "from concurrent.futures import ProcessPoolExecutor",
            "concurrent.futures.ProcessPoolExecutor()",
            "os.fork()",
        ):
            assert line_of(source, needle) in lines, needle

    def test_threads_and_harness_api_pass(self):
        _, findings = lint_fixture("rl007_ok.py", "RL007")
        assert findings == []

    def test_parallel_harness_module_is_exempt(self):
        source = read_fixture("rl007_bad.py")
        findings = lint_source(
            source,
            "src/repro/experiments/parallel.py",
            CONFIG,
            rules=[rule_by_code("RL007")],
        )
        assert findings == []
