"""Satellite: unparseable files yield one RL000 finding, never an
aborted run — and suppressions cannot mask rules they do not name
under ``--select``/``--warn``."""

from pathlib import Path

from tools.reprolint import Config, lint_paths, lint_source
from tools.reprolint.rules import rules_for

FIXTURES = Path(__file__).parent / "fixtures"


class TestUnparseableFiles:
    def test_syntax_error_is_one_rl000_finding(self):
        findings = lint_source("def broken(:\n", "src/repro/x.py")
        assert [(f.code, f.severity) for f in findings] == [
            ("RL000", "error")
        ]
        assert findings[0].path == "src/repro/x.py"
        assert findings[0].line == 1

    def test_null_bytes_are_one_rl000_finding(self):
        findings = lint_source("x = 1\0\n", "src/repro/x.py")
        assert [f.code for f in findings] == ["RL000"]

    def test_broken_fixture_file_yields_rl000(self):
        config = Config(exclude_dirs=frozenset({"__pycache__"}))
        findings = lint_paths(
            [str(FIXTURES / "rl000_broken.py")], config
        )
        assert [f.code for f in findings] == ["RL000"]
        assert findings[0].line == 2

    def test_walk_survives_a_broken_file(self, tmp_path, monkeypatch):
        """One broken file must not eat findings from its siblings."""
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "broken.py").write_text("def broken(:\n")
        (pkg / "bad.py").write_text(
            "import numpy as np\nx = np.random.rand(3)\n"
        )
        monkeypatch.chdir(tmp_path)
        findings = lint_paths(["src"])
        codes = sorted(f.code for f in findings)
        assert "RL000" in codes
        assert "RL001" in codes


SOURCE_BOTH_ON_ONE_LINE = (
    "import numpy as np\n"
    "import time\n"
    "x = np.random.rand(int(time.time()))"
    "  # reprolint: disable=RL002\n"
)


class TestSuppressionSelectInteraction:
    """A suppression names codes, not lines: disabling an unselected
    rule must not hide a selected rule's finding on the same line."""

    def test_line_has_both_violations_without_suppression(self):
        source = SOURCE_BOTH_ON_ONE_LINE.replace(
            "  # reprolint: disable=RL002", ""
        )
        codes = sorted(f.code for f in lint_source(source, "src/repro/x.py"))
        assert codes == ["RL001", "RL002"]

    def test_suppressing_unselected_rule_keeps_selected_finding(self):
        findings = lint_source(
            SOURCE_BOTH_ON_ONE_LINE,
            "src/repro/x.py",
            rules=rules_for(["RL001"]),
        )
        assert [f.code for f in findings] == ["RL001"]

    def test_suppression_still_works_for_its_own_code(self):
        findings = lint_source(
            SOURCE_BOTH_ON_ONE_LINE,
            "src/repro/x.py",
            rules=rules_for(["RL002"]),
        )
        assert findings == []

    def test_suppressed_code_hidden_even_when_other_rule_demoted(self):
        config = Config(demote_to_warning=frozenset({"RL001"}))
        findings = lint_source(
            SOURCE_BOTH_ON_ONE_LINE, "src/repro/x.py", config
        )
        # RL002 stays suppressed; RL001 survives, demoted to warning.
        assert [(f.code, f.severity) for f in findings] == [
            ("RL001", "warning")
        ]
