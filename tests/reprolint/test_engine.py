"""Engine-level tests: suppressions, severity, name-set loading, walking."""

from pathlib import Path

from tools.reprolint import Config, NameSets, lint_paths, lint_source
from tools.reprolint.engine import (
    DEFAULT_EXCLUDE_DIRS,
    collect_suppressions,
    in_scope,
    iter_python_files,
    load_name_sets,
)

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

RL001_SNIPPET = "import numpy as np\nx = np.random.rand(3)\n"


class TestSuppressions:
    def test_line_disable_parses(self):
        file_level, per_line = collect_suppressions(
            "x = 1  # reprolint: disable=RL001\n"
            "y = 2  # reprolint: disable=RL002, RL006\n"
        )
        assert file_level == set()
        assert per_line == {1: {"RL001"}, 2: {"RL002", "RL006"}}

    def test_file_disable_parses(self):
        file_level, per_line = collect_suppressions(
            "# reprolint: disable-file=RL001\nx = 1\n"
        )
        assert file_level == {"RL001"}
        assert per_line == {}

    def test_line_suppression_kills_only_that_line(self):
        source = (
            "import numpy as np\n"
            "a = np.random.rand()  # reprolint: disable=RL001\n"
            "b = np.random.rand()\n"
        )
        findings = lint_source(source, "src/repro/x.py")
        assert [f.line for f in findings if f.code == "RL001"] == [3]

    def test_file_suppression_kills_whole_file(self):
        source = "# reprolint: disable-file=RL001\n" + RL001_SNIPPET
        findings = lint_source(source, "src/repro/x.py")
        assert [f for f in findings if f.code == "RL001"] == []

    def test_unrelated_code_not_suppressed(self):
        source = (
            "import numpy as np\n"
            "a = np.random.rand()  # reprolint: disable=RL006\n"
        )
        findings = lint_source(source, "src/repro/x.py")
        assert [f.code for f in findings] == ["RL001"]


class TestSeverity:
    def test_demoted_rule_reports_as_warning(self):
        config = Config(demote_to_warning=frozenset({"RL001"}))
        findings = lint_source(RL001_SNIPPET, "src/repro/x.py", config)
        assert findings and all(f.severity == "warning" for f in findings)

    def test_default_severity_is_error(self):
        findings = lint_source(RL001_SNIPPET, "src/repro/x.py")
        assert findings and all(f.severity == "error" for f in findings)


class TestSyntaxError:
    def test_unparseable_file_yields_rl000(self):
        findings = lint_source("def broken(:\n", "src/repro/x.py")
        assert [f.code for f in findings] == ["RL000"]
        assert findings[0].severity == "error"


class TestNameSetLoading:
    def test_real_names_module_loads(self):
        sets = load_name_sets(str(REPO_ROOT / "src/repro/obs/names.py"))
        assert "frame" in sets.span_names
        assert "frames_total" in sets.metric_names
        assert "fault." in sets.span_prefixes

    def test_missing_module_yields_empty_sets(self):
        sets = load_name_sets("no/such/file.py")
        assert sets == NameSets()

    def test_empty_sets_make_rl005_loud(self):
        config = Config(rl005_names=NameSets())
        findings = lint_source(
            't.span("frame")\n', "src/repro/x.py", config
        )
        assert [f.code for f in findings] == ["RL005"]


class TestScopesAndWalking:
    def test_in_scope_prefix_semantics(self):
        assert in_scope("src/repro/cli.py", ("src/repro",))
        assert in_scope("src/repro", ("src/repro",))
        assert not in_scope("src/reprolike/x.py", ("src/repro",))

    def test_fixture_dir_excluded_from_walks(self):
        files = iter_python_files(
            [str(FIXTURES.parent)], DEFAULT_EXCLUDE_DIRS
        )
        assert files
        assert not any("fixtures" in f for f in files)

    def test_fixtures_lint_dirty_when_walked_explicitly(self):
        config = Config(
            exclude_dirs=frozenset({"__pycache__"}),
            rl001_scope=("",),  # everything in scope
            rl005_names=NameSets(),
        )
        findings = lint_paths([str(FIXTURES / "rl001_bad.py")], config)
        assert any(f.code == "RL001" for f in findings)
