"""CLI tests: exit codes, JSON output, selection, and the meta-test
that the repository's own tree lints clean."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from tools.reprolint.cli import main as reprolint_main
from tools.reprolint.rules import ALL_RULES

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = "import numpy as np\nx = np.random.rand(3)\n"


@pytest.fixture
def bad_tree(tmp_path):
    """A fake repo tree with one RL001 violation inside src/repro."""
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD_SOURCE)
    return tmp_path


def run_in(tree, argv, monkeypatch):
    monkeypatch.chdir(tree)
    return reprolint_main(argv)


class TestExitCodes:
    def test_violations_exit_1(self, bad_tree, monkeypatch, capsys):
        assert run_in(bad_tree, ["src"], monkeypatch) == 1
        out = capsys.readouterr()
        assert "RL001" in out.out
        assert "1 error(s)" in out.err

    def test_clean_tree_exits_0(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "fine.py").write_text("x = 1\n")
        assert run_in(tmp_path, ["src"], monkeypatch) == 0
        assert "clean" in capsys.readouterr().err

    def test_warn_demotion_exits_0(self, bad_tree, monkeypatch, capsys):
        code = run_in(bad_tree, ["--warn", "RL001", "src"], monkeypatch)
        assert code == 0
        out = capsys.readouterr()
        assert "[warning]" in out.out
        assert "1 warning(s)" in out.err

    def test_select_skips_other_rules(self, bad_tree, monkeypatch, capsys):
        code = run_in(bad_tree, ["--select", "RL006", "src"], monkeypatch)
        assert code == 0
        capsys.readouterr()

    def test_unknown_select_is_usage_error(self, bad_tree, monkeypatch,
                                           capsys):
        with pytest.raises(SystemExit) as exc:
            run_in(bad_tree, ["--select", "RL999", "src"], monkeypatch)
        assert exc.value.code == 2
        capsys.readouterr()


class TestJsonOutput:
    def test_json_document_shape(self, bad_tree, monkeypatch, capsys):
        assert run_in(bad_tree, ["--json", "src"], monkeypatch) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["errors"] == 1
        assert doc["warnings"] == 0
        (finding,) = doc["findings"]
        assert finding["code"] == "RL001"
        assert finding["path"] == "src/repro/bad.py"
        assert finding["line"] == 2
        assert finding["severity"] == "error"


class TestListRules:
    def test_catalog_lists_every_rule(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in out
        assert len(ALL_RULES) == 7


class TestReproLintSubcommand:
    def test_repro_lint_on_bad_tree(self, bad_tree, monkeypatch, capsys):
        monkeypatch.chdir(bad_tree)
        monkeypatch.syspath_prepend(str(REPO_ROOT))
        assert repro_main(["lint", "src"]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_repro_lint_json(self, bad_tree, monkeypatch, capsys):
        monkeypatch.chdir(bad_tree)
        monkeypatch.syspath_prepend(str(REPO_ROOT))
        assert repro_main(["lint", "--json", "src"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["errors"] == 1


class TestRepositoryIsClean:
    """The meta-test: the repo's own tree must satisfy its own linter."""

    def test_module_invocation_on_src_and_tests_exits_0(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "src", "tests"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stderr
