"""The read-side serving edge: cache versioning and the 1e6 fan-out wall.

The load-regression satellite of ISSUE 6: a simulated million-subscriber
fan-out must be absorbed by the snapshot cache (≥99% hit rate) with
bounded staleness, and the whole edge must stay deterministic (no wall
clock, no randomness — modeled delivery cost only).
"""

import pytest

from repro.net.link import LinkSpec
from repro.net.messages import SnapshotMessage
from repro.obs.registry import MetricsRegistry
from repro.runtime.metrics import FrameRecord
from repro.serving import ServingEdge, SnapshotCache


def snapshot(version, frame=None):
    return SnapshotMessage(
        version=version,
        frame_index=version if frame is None else frame,
        is_key_frame=version % 5 == 0,
        n_visible=10,
        n_detected=9,
    )


def record(frame):
    return FrameRecord(
        frame_index=frame,
        is_key_frame=frame % 5 == 0,
        inference_ms={0: 10.0},
        visible_gt=frozenset({1, 2, 3}),
        detected_gt=frozenset({1, 2}),
    )


class TestSnapshotCache:
    def test_serve_before_any_put_is_an_error(self):
        with pytest.raises(LookupError, match="no snapshot"):
            SnapshotCache().serve()

    def test_versions_must_strictly_increase(self):
        cache = SnapshotCache()
        cache.put(snapshot(3))
        with pytest.raises(ValueError, match="must increase"):
            cache.put(snapshot(3))
        with pytest.raises(ValueError, match="must increase"):
            cache.put(snapshot(2))
        assert cache.version == 3

    def test_first_serve_misses_then_every_serve_hits(self):
        cache = SnapshotCache()
        cache.put(snapshot(0))
        payloads = [cache.serve() for _ in range(5)]
        assert cache.misses == 1 and cache.hits == 4
        assert all(p == payloads[0] for p in payloads)

    def test_put_invalidates_the_cached_encoding(self):
        cache = SnapshotCache()
        cache.put(snapshot(0))
        first = cache.serve()
        cache.put(snapshot(1))
        second = cache.serve()
        assert second != first
        assert cache.misses == 2

    def test_serve_many_equals_n_serves(self):
        bulk, loop = SnapshotCache(), SnapshotCache()
        bulk.put(snapshot(0))
        loop.put(snapshot(0))
        payload = bulk.serve_many(1000)
        for _ in range(1000):
            assert loop.serve() == payload
        assert (bulk.hits, bulk.misses) == (loop.hits, loop.misses)

    def test_serve_many_requires_positive_n(self):
        cache = SnapshotCache()
        cache.put(snapshot(0))
        with pytest.raises(ValueError, match=">= 1"):
            cache.serve_many(0)


class TestServingEdgeValidation:
    def test_subscribers_must_be_positive(self):
        with pytest.raises(ValueError, match="subscribers"):
            ServingEdge(subscribers=0)

    def test_publish_every_must_be_positive(self):
        with pytest.raises(ValueError, match="publish_every"):
            ServingEdge(subscribers=1, publish_every=0)

    def test_serving_before_publishing_is_an_error(self):
        with pytest.raises(LookupError, match="no snapshot"):
            ServingEdge(subscribers=1).serve_fleet(0)


class TestMillionSubscriberFanOut:
    """The load-regression wall: 1e6 subscribers, 50 frames."""

    FRAMES = 50
    SUBSCRIBERS = 1_000_000

    @pytest.fixture(scope="class")
    def loaded_edge(self):
        edge = ServingEdge(subscribers=self.SUBSCRIBERS, publish_every=3)
        for frame in range(self.FRAMES):
            edge.on_frame(record(frame))
        return edge

    def test_cache_absorbs_the_fan_out(self, loaded_edge):
        stats = loaded_edge.stats()
        assert stats.requests == self.FRAMES * self.SUBSCRIBERS
        assert stats.hit_rate >= 0.99
        # Exactly one miss per publication, never one per subscriber.
        assert stats.misses == stats.snapshots

    def test_staleness_is_bounded_by_the_publish_cadence(self, loaded_edge):
        stats = loaded_edge.stats()
        assert stats.max_staleness_frames <= loaded_edge.staleness_bound_frames
        assert loaded_edge.staleness_bound_frames == 2
        assert stats.max_staleness_frames == 2  # the bound is attained
        assert 0.0 < stats.mean_staleness_frames <= 2.0

    def test_fan_out_cost_is_modeled_not_measured(self, loaded_edge):
        """Rerunning the identical load yields the identical cost."""
        rerun = ServingEdge(subscribers=self.SUBSCRIBERS, publish_every=3)
        for frame in range(self.FRAMES):
            rerun.on_frame(record(frame))
        assert rerun.stats() == loaded_edge.stats()
        assert loaded_edge.stats().modeled_fanout_ms > 0.0

    def test_exported_metrics_match_stats(self, loaded_edge):
        registry = MetricsRegistry()
        loaded_edge.export_metrics(registry)
        stats = loaded_edge.stats()
        by_name = {
            (m["kind"], m["name"]): m["value"] for m in registry.export()
        }
        assert by_name[("counter", "serving_requests_total")] == stats.requests
        assert by_name[("counter", "serving_cache_hits_total")] == stats.hits
        assert by_name[("counter", "serving_snapshots_total")] == stats.snapshots
        assert (
            by_name[("gauge", "serving_staleness_frames")]
            == stats.max_staleness_frames
        )


class TestPerFrameCadence:
    def test_default_cadence_has_zero_staleness(self):
        edge = ServingEdge(subscribers=10)
        for frame in range(20):
            edge.on_frame(record(frame))
        stats = edge.stats()
        assert stats.max_staleness_frames == 0
        assert stats.mean_staleness_frames == 0.0
        assert stats.snapshots == 20

    def test_slower_link_costs_more(self):
        fast = ServingEdge(subscribers=100, link=LinkSpec(bandwidth_mbps=100.0))
        slow = ServingEdge(subscribers=100, link=LinkSpec(bandwidth_mbps=1.0))
        for frame in range(5):
            fast.on_frame(record(frame))
            slow.on_frame(record(frame))
        assert slow.stats().modeled_fanout_ms > fast.stats().modeled_fanout_ms
