"""Tests for world entities."""

import math

import pytest

from repro.world.entities import (
    CLASS_DIMENSIONS,
    CLASS_SPEED_RANGES,
    ObjectClass,
    WorldObject,
)


def make_car(x=0.0, y=0.0, heading=0.0, speed=10.0, jitter=1.0):
    return WorldObject.of_class(
        1, ObjectClass.CAR, x, y, heading, speed, size_jitter=jitter
    )


class TestWorldObject:
    def test_of_class_dimensions(self):
        car = make_car()
        length, width, height = CLASS_DIMENSIONS[ObjectClass.CAR]
        assert (car.length, car.width, car.height) == (length, width, height)

    def test_size_jitter_scales_all_dims(self):
        car = make_car(jitter=1.2)
        base = CLASS_DIMENSIONS[ObjectClass.CAR]
        assert car.length == pytest.approx(base[0] * 1.2)
        assert car.height == pytest.approx(base[2] * 1.2)

    def test_invalid_jitter_raises(self):
        with pytest.raises(ValueError):
            make_car(jitter=0.0)

    def test_velocity_components(self):
        obj = make_car(heading=math.pi / 2, speed=5.0)
        vx, vy = obj.velocity
        assert vx == pytest.approx(0.0, abs=1e-12)
        assert vy == pytest.approx(5.0)

    def test_footprint_corner_count_and_center(self):
        car = make_car(x=10, y=20, heading=0.3)
        corners = car.footprint_corners()
        assert len(corners) == 4
        cx = sum(c[0] for c in corners) / 4
        cy = sum(c[1] for c in corners) / 4
        assert cx == pytest.approx(10)
        assert cy == pytest.approx(20)

    def test_footprint_rotates_with_heading(self):
        straight = make_car(heading=0.0).footprint_corners()
        rotated = make_car(heading=math.pi / 2).footprint_corners()
        xs_s = [c[0] for c in straight]
        xs_r = [c[0] for c in rotated]
        # Heading 0: length along x; heading pi/2: width along x.
        assert max(xs_s) - min(xs_s) == pytest.approx(make_car().length)
        assert max(xs_r) - min(xs_r) == pytest.approx(make_car().width)

    def test_corners_3d_has_two_layers(self):
        car = make_car()
        corners = car.corners_3d()
        assert len(corners) == 8
        zs = sorted({c[2] for c in corners})
        assert zs == [0.0, car.height]

    def test_distance_to(self):
        assert make_car(x=3, y=4).distance_to(0, 0) == pytest.approx(5.0)

    def test_all_classes_have_dimensions_and_speeds(self):
        for cls in ObjectClass:
            assert cls in CLASS_DIMENSIONS
            lo, hi = CLASS_SPEED_RANGES[cls]
            assert 0 < lo <= hi

    def test_pedestrian_smaller_than_bus(self):
        ped = CLASS_DIMENSIONS[ObjectClass.PEDESTRIAN]
        bus = CLASS_DIMENSIONS[ObjectClass.BUS]
        assert ped[0] < bus[0] and ped[1] < bus[1]
