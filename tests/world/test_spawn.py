"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.world.entities import ObjectClass
from repro.world.motion import Route
from repro.world.spawn import SpawnSpec, Spawner, rush_hour_modulator


def simple_route():
    return Route(0, ((0, 0), (100, 0)))


def never_blocked(route, clearance):
    return False


class TestSpawnSpec:
    def test_class_mix_normalized(self):
        spec = SpawnSpec(
            simple_route(), 1.0,
            class_mix={ObjectClass.CAR: 2.0, ObjectClass.BUS: 2.0},
        )
        assert spec.class_mix[ObjectClass.CAR] == pytest.approx(0.5)

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError):
            SpawnSpec(simple_route(), -0.1)

    def test_zero_weight_mix_raises(self):
        with pytest.raises(ValueError):
            SpawnSpec(simple_route(), 1.0, class_mix={ObjectClass.CAR: 0.0})

    def test_rate_modulation(self):
        spec = SpawnSpec(
            simple_route(), 1.0, rate_modulator=lambda t: 0.5 if t < 10 else 2.0
        )
        assert spec.rate_at(5.0) == pytest.approx(0.5)
        assert spec.rate_at(15.0) == pytest.approx(2.0)

    def test_rate_never_negative(self):
        spec = SpawnSpec(simple_route(), 1.0, rate_modulator=lambda t: -5.0)
        assert spec.rate_at(0.0) == 0.0


class TestSpawner:
    def test_poisson_rate_statistics(self):
        spec = SpawnSpec(simple_route(), rate_per_s=2.0)
        spawner = Spawner([spec], np.random.default_rng(0))
        born = []
        for step in range(1000):
            born.extend(spawner.spawn_step(step * 0.1, 0.1, never_blocked))
        # E[arrivals] = 2.0/s * 100 s = 200
        assert 150 < len(born) < 250

    def test_unique_increasing_ids(self):
        spec = SpawnSpec(simple_route(), rate_per_s=5.0)
        spawner = Spawner([spec], np.random.default_rng(1))
        born = []
        for step in range(100):
            born.extend(spawner.spawn_step(step * 0.1, 0.1, never_blocked))
        ids = [o.object_id for o in born]
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids)

    def test_blocked_entrance_suppresses(self):
        spec = SpawnSpec(simple_route(), rate_per_s=10.0)
        spawner = Spawner([spec], np.random.default_rng(2))
        born = spawner.spawn_step(0.0, 1.0, lambda r, c: True)
        assert born == []

    def test_spawned_objects_at_route_start(self):
        spec = SpawnSpec(simple_route(), rate_per_s=10.0)
        spawner = Spawner([spec], np.random.default_rng(3))
        born = spawner.spawn_step(0.0, 1.0, never_blocked)
        assert born  # rate 10/s in 1 s: overwhelmingly likely
        for obj in born:
            assert (obj.x, obj.y) == (0.0, 0.0)
            assert obj.route_id == 0
            assert "cruise_speed" in obj.attributes

    def test_class_mix_respected(self):
        spec = SpawnSpec(
            simple_route(), rate_per_s=20.0,
            class_mix={ObjectClass.PEDESTRIAN: 1.0},
        )
        spawner = Spawner([spec], np.random.default_rng(4))
        born = spawner.spawn_step(0.0, 2.0, never_blocked)
        assert born and all(
            o.object_class is ObjectClass.PEDESTRIAN for o in born
        )

    def test_invalid_dt_raises(self):
        spawner = Spawner([], np.random.default_rng(0))
        with pytest.raises(ValueError):
            spawner.spawn_step(0.0, 0.0, never_blocked)


class TestRushHourModulator:
    def test_bounds(self):
        mod = rush_hour_modulator(period_s=100, low=0.2, high=1.8)
        values = [mod(t) for t in np.linspace(0, 200, 500)]
        assert min(values) >= 0.2 - 1e-9
        assert max(values) <= 1.8 + 1e-9

    def test_periodicity(self):
        mod = rush_hour_modulator(period_s=60)
        assert mod(10.0) == pytest.approx(mod(70.0))

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            rush_hour_modulator(period_s=0)
        with pytest.raises(ValueError):
            rush_hour_modulator(low=2.0, high=1.0)
