"""Tests for the stepping world simulation."""

import pytest

from repro.world.motion import Route, TrafficLight
from repro.world.spawn import SpawnSpec
from repro.world.world import World, WorldConfig


def make_world(rate=1.0, light=None, seed=0, length=100.0):
    route = Route(0, ((0.0, 0.0), (length, 0.0)))
    return World(
        WorldConfig(
            routes=[route],
            spawn_specs=[SpawnSpec(route, rate)],
            traffic_light=light,
            seed=seed,
        )
    )


class TestWorldStepping:
    def test_time_advances(self):
        world = make_world()
        world.run(5.0, 0.1)
        assert world.time == pytest.approx(5.0)

    def test_objects_move_forward(self):
        world = make_world(rate=5.0, seed=1)
        world.step(0.5)
        if not world.objects:
            world.run(2.0, 0.1)
        before = {o.object_id: o.route_progress for o in world.objects}
        world.step(0.1)
        for obj in world.objects:
            if obj.object_id in before:
                assert obj.route_progress >= before[obj.object_id]

    def test_objects_despawn_at_route_end(self):
        world = make_world(rate=2.0, seed=2, length=30.0)
        world.run(60.0, 0.1)
        assert world.departed_objects  # plenty should have crossed 30 m
        for obj in world.departed_objects:
            assert not obj.alive

    def test_deterministic_given_seed(self):
        w1 = make_world(rate=1.0, seed=42)
        w2 = make_world(rate=1.0, seed=42)
        w1.run(20.0, 0.1)
        w2.run(20.0, 0.1)
        s1 = [(o.object_id, o.x, o.speed) for o in w1.objects]
        s2 = [(o.object_id, o.x, o.speed) for o in w2.objects]
        assert s1 == s2

    def test_different_seeds_differ(self):
        w1 = make_world(rate=1.0, seed=1)
        w2 = make_world(rate=1.0, seed=2)
        w1.run(20.0, 0.1)
        w2.run(20.0, 0.1)
        s1 = [(o.object_id, round(o.x, 3)) for o in w1.objects]
        s2 = [(o.object_id, round(o.x, 3)) for o in w2.objects]
        assert s1 != s2

    def test_invalid_dt_raises(self):
        with pytest.raises(ValueError):
            make_world().step(0.0)

    def test_empty_routes_raise(self):
        with pytest.raises(ValueError):
            World(WorldConfig(routes=[], spawn_specs=[]))

    def test_duplicate_route_ids_raise(self):
        r1 = Route(0, ((0, 0), (10, 0)))
        r2 = Route(0, ((0, 5), (10, 5)))
        with pytest.raises(ValueError):
            World(WorldConfig(routes=[r1, r2], spawn_specs=[]))

    def test_objects_ordered_by_id(self):
        world = make_world(rate=5.0, seed=3)
        world.run(10.0, 0.1)
        ids = [o.object_id for o in world.objects]
        assert ids == sorted(ids)


class TestCarFollowing:
    def test_no_collisions_on_congested_road(self):
        world = make_world(rate=5.0, seed=4)
        for _ in range(300):
            world.step(0.1)
            objs = sorted(world.objects, key=lambda o: o.route_progress)
            for follower, leader in zip(objs, objs[1:]):
                front = follower.route_progress + follower.length / 2
                rear = leader.route_progress - leader.length / 2
                assert front <= rear + 0.5, "vehicles overlapped"

    def test_queue_forms_at_red_light(self):
        light = TrafficLight(
            stop_positions={0: 50.0},
            green_routes=[frozenset(), frozenset({0})],
            phase_duration=1000.0,  # stays red for the whole test
        )
        world = make_world(rate=2.0, light=light, seed=5)
        world.run(40.0, 0.1)
        # Nobody (spawned while red) passes the stop line.
        for obj in world.objects:
            assert obj.route_progress <= 50.5
        # And a queue of nearly stopped vehicles exists near the line.
        stopped = [o for o in world.objects if o.speed < 0.5]
        assert len(stopped) >= 2

    def test_green_light_releases_queue(self):
        light = TrafficLight(
            stop_positions={0: 50.0},
            green_routes=[frozenset(), frozenset({0})],
            phase_duration=30.0,
        )
        world = make_world(rate=2.0, light=light, seed=6)
        world.run(29.0, 0.1)  # red phase: queue forms
        queued = [o.object_id for o in world.objects if o.speed < 0.5]
        world.run(15.0, 0.1)  # green phase releases
        still_stopped = [
            o.object_id for o in world.objects if o.speed < 0.5
        ]
        assert len(still_stopped) < max(1, len(queued))
