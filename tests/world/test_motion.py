"""Tests for routes, traffic lights and longitudinal motion rules."""

import math

import pytest

from repro.world.motion import (
    MotionParams,
    Route,
    TrafficLight,
    advance_speed,
    gap_limited_speed,
    light_limited_speed,
)


class TestRoute:
    def test_length_of_polyline(self):
        route = Route(0, ((0, 0), (3, 4), (3, 10)))
        assert route.length == pytest.approx(5 + 6)

    def test_pose_at_start_and_end(self):
        route = Route(0, ((0, 0), (10, 0)))
        assert route.point_at(0) == pytest.approx((0, 0))
        assert route.point_at(10) == pytest.approx((10, 0))

    def test_pose_clamps_beyond_ends(self):
        route = Route(0, ((0, 0), (10, 0)))
        assert route.point_at(-5) == pytest.approx((0, 0))
        assert route.point_at(50) == pytest.approx((10, 0))

    def test_heading_follows_segments(self):
        route = Route(0, ((0, 0), (10, 0), (10, 10)))
        _, _, h1 = route.pose_at(5)
        _, _, h2 = route.pose_at(15)
        assert h1 == pytest.approx(0.0)
        assert h2 == pytest.approx(math.pi / 2)

    def test_midpoint_interpolation(self):
        route = Route(0, ((0, 0), (10, 0)))
        assert route.point_at(2.5) == pytest.approx((2.5, 0))

    def test_too_few_waypoints_raise(self):
        with pytest.raises(ValueError):
            Route(0, ((0, 0),))

    def test_zero_length_segment_raises(self):
        with pytest.raises(ValueError):
            Route(0, ((0, 0), (0, 0), (1, 1)))


class TestTrafficLight:
    def light(self):
        return TrafficLight(
            stop_positions={0: 50.0, 1: 50.0},
            green_routes=[frozenset({0}), frozenset({1})],
            phase_duration=10.0,
        )

    def test_phase_cycling(self):
        light = self.light()
        assert light.phase_at(0.0) == 0
        assert light.phase_at(10.0) == 1
        assert light.phase_at(20.0) == 0

    def test_is_green_by_phase(self):
        light = self.light()
        assert light.is_green(0, 5.0)
        assert not light.is_green(1, 5.0)
        assert light.is_green(1, 15.0)

    def test_ungoverned_route_always_green(self):
        assert self.light().is_green(99, 5.0)

    def test_offset_shifts_phase(self):
        light = TrafficLight(
            stop_positions={0: 10.0},
            green_routes=[frozenset({0}), frozenset()],
            phase_duration=10.0,
            offset=10.0,
        )
        assert light.phase_at(0.0) == 1

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            TrafficLight(stop_positions={}, green_routes=[])
        with pytest.raises(ValueError):
            TrafficLight(
                stop_positions={}, green_routes=[frozenset()], phase_duration=0
            )


class TestSpeedRules:
    def params(self):
        return MotionParams(max_accel=2.0, max_decel=4.0, min_gap=2.0)

    def test_advance_speed_accel_limited(self):
        assert advance_speed(0.0, 10.0, 1.0, self.params()) == pytest.approx(2.0)

    def test_advance_speed_decel_limited(self):
        assert advance_speed(10.0, 0.0, 1.0, self.params()) == pytest.approx(6.0)

    def test_advance_speed_reaches_target(self):
        assert advance_speed(9.9, 10.0, 1.0, self.params()) == pytest.approx(10.0)

    def test_gap_free_road(self):
        v = gap_limited_speed(0.0, 2.0, None, 0.0, 12.0, 0.1, self.params())
        assert v == 12.0

    def test_gap_blocked_by_leader(self):
        # Leader rear at 10 - 2 = 8; my front at 0 + 2 = 2; gap 8-2-2=4.
        v = gap_limited_speed(0.0, 2.0, 10.0, 2.0, 50.0, 1.0, self.params())
        assert v == pytest.approx(4.0)

    def test_gap_zero_when_bumper_to_bumper(self):
        v = gap_limited_speed(0.0, 2.0, 5.0, 2.0, 50.0, 1.0, self.params())
        assert v == 0.0

    def test_light_green_no_limit(self):
        light = TrafficLight(
            stop_positions={0: 50.0}, green_routes=[frozenset({0})]
        )
        v = light_limited_speed(0.0, 10.0, light, 0, 0.0, 0.1, self.params())
        assert v == 10.0

    def test_light_red_stops_at_line(self):
        light = TrafficLight(
            stop_positions={0: 50.0},
            green_routes=[frozenset(), frozenset({0})],
            phase_duration=10.0,
        )
        # At t=5 phase 0 is active: route 0 is red.
        v = light_limited_speed(48.5, 10.0, light, 0, 5.0, 1.0, self.params())
        assert v <= 0.6  # nearly at the stop line (tolerance 1.0)

    def test_light_red_but_past_line_clears(self):
        light = TrafficLight(
            stop_positions={0: 50.0},
            green_routes=[frozenset(), frozenset({0})],
            phase_duration=10.0,
        )
        v = light_limited_speed(55.0, 10.0, light, 0, 5.0, 1.0, self.params())
        assert v == 10.0

    def test_no_light_no_limit(self):
        v = light_limited_speed(0.0, 9.0, None, 0, 0.0, 0.1, self.params())
        assert v == 9.0
