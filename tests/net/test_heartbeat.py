"""Heartbeat/lease protocol: renewal, expiry timing, config validation."""

import pytest

from repro.net import Heartbeat, HeartbeatMonitor, LeaseConfig


def test_lease_config_validation():
    with pytest.raises(ValueError):
        LeaseConfig(heartbeat_interval_frames=0)
    with pytest.raises(ValueError):
        LeaseConfig(lease_misses=0)
    with pytest.raises(ValueError):
        LeaseConfig(takeover_restore_ms=-1.0)


def test_heartbeat_due_frames():
    lease = LeaseConfig(heartbeat_interval_frames=4)
    assert [f for f in range(10) if lease.is_heartbeat_due(f)] == [0, 4, 8]


def test_live_scheduler_never_expires():
    monitor = HeartbeatMonitor(LeaseConfig(heartbeat_interval_frames=3))
    for frame in range(20):
        assert not monitor.observe(frame, True)
    assert not monitor.lease_expired


def test_expiry_lands_on_first_due_frame_after_crash():
    lease = LeaseConfig(heartbeat_interval_frames=5, lease_misses=1)
    monitor = HeartbeatMonitor(lease)
    for frame in range(7):
        monitor.observe(frame, True)
    # crash after frame 6: the next due beacon is frame 10
    expiries = [f for f in range(7, 20) if monitor.observe(f, False)]
    assert expiries == [10]
    assert monitor.lease_expired


def test_crash_on_due_frame_waits_a_full_interval():
    # The "dying gasp": a renewal granted at the crash frame means the
    # first countable miss is strictly later, bounding detection at one
    # full interval rather than zero.
    lease = LeaseConfig(heartbeat_interval_frames=5, lease_misses=1)
    monitor = HeartbeatMonitor(lease)
    monitor.last_renewal_frame = 10  # lease granted through frame 10
    assert not monitor.observe(10, False)  # due, but covered by renewal
    assert not monitor.observe(12, False)  # not due
    assert monitor.observe(15, False)  # first due frame after renewal
    assert monitor.lease_expired


def test_multi_miss_lease_expires_later():
    lease = LeaseConfig(heartbeat_interval_frames=4, lease_misses=2)
    monitor = HeartbeatMonitor(lease)
    monitor.observe(0, True)
    assert not monitor.observe(4, False)  # one miss
    assert monitor.observe(8, False)  # second miss: expiry, exactly once
    assert not monitor.observe(12, False)  # already expired: not "now"


def test_recovery_resets_misses():
    monitor = HeartbeatMonitor(LeaseConfig(heartbeat_interval_frames=2,
                                           lease_misses=2))
    monitor.observe(0, True)
    monitor.observe(2, False)
    assert monitor.missed == 1
    monitor.observe(3, True)
    assert monitor.missed == 0 and not monitor.lease_expired


def test_heartbeat_message_payload():
    beat = Heartbeat(frame_index=12, leader_id=3)
    assert beat.payload_bytes() > 0


# ---------------------------------------------------------------------------
# Property tests: the availability bound the failover design rests on.
# Detection latency after a crash is at most lease_misses *
# heartbeat_interval_frames frames, and the expiry frame is exactly
# predictable from the last renewal.
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

_DETERMINISTIC = settings(derandomize=True, database=None, max_examples=80)


@given(
    h=st.integers(min_value=1, max_value=20),
    m=st.integers(min_value=1, max_value=5),
    c=st.integers(min_value=0, max_value=100),
)
@_DETERMINISTIC
def test_detection_latency_is_bounded(h, m, c):
    lease = LeaseConfig(heartbeat_interval_frames=h, lease_misses=m)
    monitor = HeartbeatMonitor(lease)
    monitor.observe(c, True)  # last renewal before the crash
    expiries = [
        f for f in range(c + 1, c + m * h + 1) if monitor.observe(f, False)
    ]
    # The lease expires exactly once, within the availability bound ...
    assert len(expiries) == 1
    (expiry,) = expiries
    assert expiry - c <= m * h
    # ... on an exactly predictable frame: the first due beacon strictly
    # after the renewal, plus the remaining allowed misses.
    first_due = c + ((h - c % h) or h)
    assert expiry == first_due + (m - 1) * h


@given(
    h=st.integers(min_value=1, max_value=20),
    m=st.integers(min_value=1, max_value=5),
    k=st.integers(min_value=0, max_value=10),
)
@_DETERMINISTIC
def test_bound_is_tight_when_crash_lands_on_a_due_frame(h, m, k):
    # Expire-exactly-now edge: renewing on a heartbeat frame covers that
    # beacon ("dying gasp"), so detection takes the full m*h frames --
    # the availability bound is attained, never exceeded.
    c = k * h
    lease = LeaseConfig(heartbeat_interval_frames=h, lease_misses=m)
    monitor = HeartbeatMonitor(lease)
    monitor.observe(c, True)
    assert not monitor.observe(c, False)  # due frame, covered by renewal
    expiry = next(
        f for f in range(c + 1, c + m * h + 1) if monitor.observe(f, False)
    )
    assert expiry - c == m * h


@given(
    h=st.integers(min_value=1, max_value=12),
    m=st.integers(min_value=1, max_value=4),
    renewals=st.lists(st.booleans(), min_size=1, max_size=60),
)
@_DETERMINISTIC
def test_no_expiry_while_renewals_keep_arriving(h, m, renewals):
    # Whatever the alive/dead pattern, an expiry can only fire after m
    # consecutive *due* frames went unrenewed -- never while the most
    # recent due beacon was answered.
    lease = LeaseConfig(heartbeat_interval_frames=h, lease_misses=m)
    monitor = HeartbeatMonitor(lease)
    last_alive = None
    for frame, alive in enumerate(renewals):
        fired = monitor.observe(frame, alive)
        if alive:
            last_alive = frame
        if fired:
            assert last_alive is None or frame - last_alive >= m * h - h + 1
            assert monitor.missed == m
