"""Heartbeat/lease protocol: renewal, expiry timing, config validation."""

import pytest

from repro.net import Heartbeat, HeartbeatMonitor, LeaseConfig


def test_lease_config_validation():
    with pytest.raises(ValueError):
        LeaseConfig(heartbeat_interval_frames=0)
    with pytest.raises(ValueError):
        LeaseConfig(lease_misses=0)
    with pytest.raises(ValueError):
        LeaseConfig(takeover_restore_ms=-1.0)


def test_heartbeat_due_frames():
    lease = LeaseConfig(heartbeat_interval_frames=4)
    assert [f for f in range(10) if lease.is_heartbeat_due(f)] == [0, 4, 8]


def test_live_scheduler_never_expires():
    monitor = HeartbeatMonitor(LeaseConfig(heartbeat_interval_frames=3))
    for frame in range(20):
        assert not monitor.observe(frame, True)
    assert not monitor.lease_expired


def test_expiry_lands_on_first_due_frame_after_crash():
    lease = LeaseConfig(heartbeat_interval_frames=5, lease_misses=1)
    monitor = HeartbeatMonitor(lease)
    for frame in range(7):
        monitor.observe(frame, True)
    # crash after frame 6: the next due beacon is frame 10
    expiries = [f for f in range(7, 20) if monitor.observe(f, False)]
    assert expiries == [10]
    assert monitor.lease_expired


def test_crash_on_due_frame_waits_a_full_interval():
    # The "dying gasp": a renewal granted at the crash frame means the
    # first countable miss is strictly later, bounding detection at one
    # full interval rather than zero.
    lease = LeaseConfig(heartbeat_interval_frames=5, lease_misses=1)
    monitor = HeartbeatMonitor(lease)
    monitor.last_renewal_frame = 10  # lease granted through frame 10
    assert not monitor.observe(10, False)  # due, but covered by renewal
    assert not monitor.observe(12, False)  # not due
    assert monitor.observe(15, False)  # first due frame after renewal
    assert monitor.lease_expired


def test_multi_miss_lease_expires_later():
    lease = LeaseConfig(heartbeat_interval_frames=4, lease_misses=2)
    monitor = HeartbeatMonitor(lease)
    monitor.observe(0, True)
    assert not monitor.observe(4, False)  # one miss
    assert monitor.observe(8, False)  # second miss: expiry, exactly once
    assert not monitor.observe(12, False)  # already expired: not "now"


def test_recovery_resets_misses():
    monitor = HeartbeatMonitor(LeaseConfig(heartbeat_interval_frames=2,
                                           lease_misses=2))
    monitor.observe(0, True)
    monitor.observe(2, False)
    assert monitor.missed == 1
    monitor.observe(3, True)
    assert monitor.missed == 0 and not monitor.lease_expired


def test_heartbeat_message_payload():
    beat = Heartbeat(frame_index=12, leader_id=3)
    assert beat.payload_bytes() > 0
