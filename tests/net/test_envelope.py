"""The hardened wire protocol: envelopes, checksums, channel guards."""

import pickle

import pytest

from repro.net.envelope import (
    ADMIT_OK,
    ADMIT_REORDERED,
    DEFAULT_WINDOW,
    DROP_CORRUPT,
    DROP_DUPLICATE,
    DROP_STALE_EPOCH,
    DROP_WINDOW_EXCEEDED,
    ChannelGuard,
    Envelope,
)


def seal(seq=0, epoch=0, channel="assign:0", payload="1,2,3"):
    return Envelope.seal(channel, seq, epoch, payload)


class TestEnvelope:
    def test_seal_verifies(self):
        env = seal()
        assert env.intact
        assert env.checksum == Envelope.seal(
            env.channel, env.seq, env.epoch, env.payload
        ).checksum

    def test_any_field_damage_fails_verification(self):
        env = seal(seq=3, epoch=1, payload="7,8")
        from dataclasses import replace
        assert not replace(env, payload="7,9").intact
        assert not replace(env, seq=4).intact
        assert not replace(env, epoch=2).intact
        assert not replace(env, channel="assign:1").intact

    def test_corrupted_copy_never_verifies(self):
        assert not seal().corrupted().intact

    def test_negative_header_fields_rejected(self):
        with pytest.raises(ValueError):
            Envelope.seal("c", -1, 0, "")
        with pytest.raises(ValueError):
            Envelope.seal("c", 0, -1, "")

    def test_checksum_is_stable_across_processes(self):
        # CRC-32 of a fixed blob: pinned so a checksum change (which
        # would silently invalidate in-flight golden traces) is loud.
        assert seal(seq=5, epoch=2, payload="a").checksum == 0x0EF6E011


class TestChannelGuard:
    def test_in_order_admission(self):
        guard = ChannelGuard()
        for i in range(5):
            verdict = guard.admit(seal(seq=i))
            assert verdict.accepted and verdict.reason == ADMIT_OK
        assert guard.admitted == 5

    def test_gap_tolerated_and_reported(self):
        guard = ChannelGuard()
        guard.admit(seal(seq=0))
        verdict = guard.admit(seal(seq=4))
        assert verdict.accepted and verdict.gap == 3

    def test_corrupt_dropped_before_everything_else(self):
        guard = ChannelGuard()
        verdict = guard.admit(seal(seq=0).corrupted())
        assert not verdict.accepted and verdict.reason == DROP_CORRUPT
        assert guard.corrupt == 1 and guard.admitted == 0

    def test_stale_epoch_fenced(self):
        guard = ChannelGuard()
        guard.admit(seal(seq=0, epoch=2))
        verdict = guard.admit(seal(seq=1, epoch=1))
        assert not verdict.accepted and verdict.reason == DROP_STALE_EPOCH
        assert guard.fenced == 1

    def test_higher_epoch_resets_sequence_space(self):
        guard = ChannelGuard()
        guard.admit(seal(seq=40, epoch=0))
        # New leadership term numbers its own sends from 0 again.
        verdict = guard.admit(seal(seq=0, epoch=1))
        assert verdict.accepted and verdict.reason == ADMIT_OK
        assert guard.epoch == 1 and guard.next_seq == 1

    def test_duplicate_dropped_within_window(self):
        guard = ChannelGuard()
        guard.admit(seal(seq=3))
        verdict = guard.admit(seal(seq=3))
        assert not verdict.accepted and verdict.reason == DROP_DUPLICATE
        assert guard.duplicates == 1

    def test_reordered_unseen_admitted_once(self):
        guard = ChannelGuard()
        guard.admit(seal(seq=0))
        guard.admit(seal(seq=5))
        verdict = guard.admit(seal(seq=3))
        assert verdict.accepted and verdict.reason == ADMIT_REORDERED
        # ... and only once: the replay is now a duplicate.
        replay = guard.admit(seal(seq=3))
        assert not replay.accepted and replay.reason == DROP_DUPLICATE

    def test_window_exceeded_dropped_unseen(self):
        guard = ChannelGuard(window=4)
        guard.admit(seal(seq=10))
        verdict = guard.admit(seal(seq=2))
        assert not verdict.accepted
        assert verdict.reason == DROP_WINDOW_EXCEEDED
        assert guard.window_exceeded == 1

    def test_hold_reordered_books_the_sequence_number(self):
        guard = ChannelGuard()
        held = guard.hold_reordered(seal(seq=2))
        assert not held.accepted and held.reason == ADMIT_REORDERED
        assert guard.reordered == 1
        # The held message's seq is spent: a wire replay is a duplicate.
        replay = guard.admit(seal(seq=2))
        assert not replay.accepted and replay.reason == DROP_DUPLICATE

    def test_hold_reordered_still_fences_and_checksums(self):
        guard = ChannelGuard()
        guard.admit(seal(seq=0, epoch=3))
        assert guard.hold_reordered(seal(seq=1, epoch=1)).reason == (
            DROP_STALE_EPOCH
        )
        assert guard.hold_reordered(seal(seq=1).corrupted()).reason == (
            DROP_CORRUPT
        )

    def test_window_trim_bounds_seen_set(self):
        guard = ChannelGuard(window=8)
        for i in range(100):
            guard.admit(seal(seq=i))
        assert len(guard._seen) <= guard.window
        assert guard.next_seq == 100
        assert guard.window < DEFAULT_WINDOW

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ChannelGuard(window=0)

    def test_guard_pickles_for_checkpoints(self):
        guard = ChannelGuard()
        guard.admit(seal(seq=0))
        guard.admit(seal(seq=0))
        clone = pickle.loads(pickle.dumps(guard))
        assert clone.duplicates == 1 and clone.next_seq == 1
