"""Tests for the network substrate."""

import numpy as np
import pytest

from repro.geometry.box import BBox
from repro.net.link import (
    TESTBED_DOWNLINK,
    TESTBED_UPLINK,
    DuplexChannel,
    Link,
    LinkSpec,
)
from repro.net.messages import AssignmentMessage, DetectionReport


class TestLinkSpec:
    def test_testbed_constants(self):
        assert TESTBED_DOWNLINK.bandwidth_mbps == 100.0
        assert TESTBED_UPLINK.bandwidth_mbps == 20.0

    def test_invalid_specs_raise(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_mbps=10, propagation_ms=-1)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_mbps=10, jitter_ms_std=-0.1)


class TestLink:
    def test_transfer_time_formula(self):
        link = Link(LinkSpec(bandwidth_mbps=8.0, propagation_ms=2.0))
        # 1000 bytes = 8000 bits at 8 Mbps -> 1 ms + 2 ms propagation.
        assert link.transfer_ms(1000) == pytest.approx(3.0)

    def test_zero_bytes_costs_propagation(self):
        link = Link(LinkSpec(bandwidth_mbps=10.0, propagation_ms=1.5))
        assert link.transfer_ms(0) == pytest.approx(1.5)

    def test_negative_bytes_raise(self):
        link = Link(LinkSpec(bandwidth_mbps=10.0))
        with pytest.raises(ValueError):
            link.transfer_ms(-1)

    def test_accounting(self):
        link = Link(LinkSpec(bandwidth_mbps=10.0))
        link.transfer_ms(100)
        link.transfer_ms(200)
        assert link.bytes_sent == 300
        assert link.messages_sent == 2

    def test_jitter_adds_nonnegative_latency(self):
        spec = LinkSpec(bandwidth_mbps=10.0, propagation_ms=1.0, jitter_ms_std=0.5)
        link = Link(spec, np.random.default_rng(0))
        base = 1.0 + 100 * 8 / 1e7 * 1e3
        for _ in range(50):
            assert link.transfer_ms(100) >= base - 1e-9

    def test_slower_uplink_than_downlink(self):
        channel = DuplexChannel()
        up = channel.up.transfer_ms(10_000)
        down = channel.down.transfer_ms(10_000)
        assert up > down

    def test_round_trip_sums_directions(self):
        channel = DuplexChannel()
        rt = channel.round_trip_ms(1000, 1000)
        assert rt == pytest.approx(
            channel.up.spec.propagation_ms
            + channel.down.spec.propagation_ms
            + 1000 * 8 / (20e6) * 1e3
            + 1000 * 8 / (100e6) * 1e3
        )


class TestMessages:
    def box(self):
        return BBox(0, 0, 10, 10)

    def test_report_payload_scales_with_objects(self):
        small = DetectionReport(0, 0, (self.box(),), (1,), (5,))
        large = DetectionReport(
            0, 0, (self.box(),) * 10, tuple(range(10)), tuple(range(10))
        )
        assert large.payload_bytes() > small.payload_bytes()
        assert small.n_objects == 1

    def test_report_parallel_fields_enforced(self):
        with pytest.raises(ValueError):
            DetectionReport(0, 0, (self.box(),), (1, 2), (5,))

    def test_assignment_payload(self):
        msg = AssignmentMessage(
            camera_id=0,
            frame_index=3,
            assigned_track_ids=(1, 2, 3),
            camera_priority_order=(0, 1),
            mask_cells=((0, 0), (1, 1)),
        )
        assert msg.payload_bytes() > 64
