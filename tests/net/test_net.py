"""Tests for the network substrate."""

import numpy as np
import pytest

from repro.geometry.box import BBox
from repro.net.link import (
    TESTBED_DOWNLINK,
    TESTBED_UPLINK,
    DuplexChannel,
    Link,
    LinkFault,
    LinkSpec,
    RetryPolicy,
)
from repro.net.messages import AssignmentMessage, DetectionReport


class TestLinkSpec:
    def test_testbed_constants(self):
        assert TESTBED_DOWNLINK.bandwidth_mbps == 100.0
        assert TESTBED_UPLINK.bandwidth_mbps == 20.0

    def test_invalid_specs_raise(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_mbps=10, propagation_ms=-1)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_mbps=10, jitter_ms_std=-0.1)


class TestLink:
    def test_transfer_time_formula(self):
        link = Link(LinkSpec(bandwidth_mbps=8.0, propagation_ms=2.0))
        # 1000 bytes = 8000 bits at 8 Mbps -> 1 ms + 2 ms propagation.
        assert link.transfer_ms(1000) == pytest.approx(3.0)

    def test_zero_bytes_costs_propagation(self):
        link = Link(LinkSpec(bandwidth_mbps=10.0, propagation_ms=1.5))
        assert link.transfer_ms(0) == pytest.approx(1.5)

    def test_negative_bytes_raise(self):
        link = Link(LinkSpec(bandwidth_mbps=10.0))
        with pytest.raises(ValueError):
            link.transfer_ms(-1)

    def test_accounting(self):
        link = Link(LinkSpec(bandwidth_mbps=10.0))
        link.transfer_ms(100)
        link.transfer_ms(200)
        assert link.bytes_sent == 300
        assert link.messages_sent == 2

    def test_jitter_adds_nonnegative_latency(self):
        spec = LinkSpec(bandwidth_mbps=10.0, propagation_ms=1.0, jitter_ms_std=0.5)
        link = Link(spec, np.random.default_rng(0))
        base = 1.0 + 100 * 8 / 1e7 * 1e3
        for _ in range(50):
            assert link.transfer_ms(100) >= base - 1e-9

    def test_slower_uplink_than_downlink(self):
        channel = DuplexChannel(seed=0)
        up = channel.up.transfer_ms(10_000)
        down = channel.down.transfer_ms(10_000)
        assert up > down

    def test_round_trip_sums_directions(self):
        channel = DuplexChannel(seed=0)
        rt = channel.round_trip_ms(1000, 1000)
        assert rt == pytest.approx(
            channel.up.spec.propagation_ms
            + channel.down.spec.propagation_ms
            + 1000 * 8 / (20e6) * 1e3
            + 1000 * 8 / (100e6) * 1e3
        )


class TestMessages:
    def box(self):
        return BBox(0, 0, 10, 10)

    def test_report_payload_scales_with_objects(self):
        small = DetectionReport(0, 0, (self.box(),), (1,), (5,))
        large = DetectionReport(
            0, 0, (self.box(),) * 10, tuple(range(10)), tuple(range(10))
        )
        assert large.payload_bytes() > small.payload_bytes()
        assert small.n_objects == 1

    def test_report_parallel_fields_enforced(self):
        with pytest.raises(ValueError):
            DetectionReport(0, 0, (self.box(),), (1, 2), (5,))

    def test_assignment_payload(self):
        msg = AssignmentMessage(
            camera_id=0,
            frame_index=3,
            assigned_track_ids=(1, 2, 3),
            camera_priority_order=(0, 1),
            mask_cells=((0, 0), (1, 1)),
        )
        assert msg.payload_bytes() > 64


class TestRetryPolicy:
    def test_linear_backoff_penalty(self):
        policy = RetryPolicy(max_attempts=4, timeout_ms=60.0, backoff_ms=20.0)
        assert policy.penalty_ms(0) == pytest.approx(60.0)
        assert policy.penalty_ms(2) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ms=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_ms=-1.0)

    def test_policy_is_immutable(self):
        # Shared between the pipeline, scheduler and failover layers —
        # a mutated policy would silently change retry semantics mid-run.
        import dataclasses

        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(dataclasses.FrozenInstanceError):
            policy.max_attempts = 5
        fault = LinkFault(loss_prob=0.1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            fault.loss_prob = 0.9


class TestLinkFault:
    def test_clean_and_validation(self):
        assert LinkFault().is_clean
        assert not LinkFault(loss_prob=0.1).is_clean
        assert not LinkFault(extra_delay_ms=5.0).is_clean
        with pytest.raises(ValueError):
            LinkFault(loss_prob=1.1)
        with pytest.raises(ValueError):
            LinkFault(extra_delay_ms=-1.0)


class TestReliableTransfer:
    def spec(self):
        return LinkSpec(bandwidth_mbps=8.0, propagation_ms=2.0)

    def test_clean_fault_costs_plain_transfer(self):
        link = Link(self.spec())
        outcome = link.reliable_transfer(
            1000, LinkFault(), RetryPolicy(), np.random.default_rng(0)
        )
        assert outcome.delivered
        assert outcome.attempts == 1
        assert outcome.dropped == 0
        assert outcome.elapsed_ms == pytest.approx(3.0)
        assert link.messages_dropped == 0

    def test_extra_delay_charged_on_delivery(self):
        link = Link(self.spec())
        outcome = link.reliable_transfer(
            1000, LinkFault(extra_delay_ms=40.0), RetryPolicy(),
            np.random.default_rng(0),
        )
        assert outcome.delivered
        assert outcome.elapsed_ms == pytest.approx(43.0)

    def test_total_loss_exhausts_attempts_and_counts_drops(self):
        link = Link(self.spec())
        policy = RetryPolicy(max_attempts=3, timeout_ms=60.0, backoff_ms=20.0)
        outcome = link.reliable_transfer(
            1000, LinkFault(loss_prob=1.0), policy, np.random.default_rng(0)
        )
        assert not outcome.delivered
        assert outcome.attempts == 3
        assert outcome.dropped == 3
        # 60 + (60+20) + (60+40): timeout plus linear backoff per attempt.
        assert outcome.elapsed_ms == pytest.approx(240.0)
        assert link.messages_dropped == 3
        assert link.bytes_dropped == 3000
        # drops never contaminate the delivered-traffic counters
        assert link.messages_sent == 0
        assert link.bytes_sent == 0

    def test_partial_loss_retries_then_delivers(self):
        link = Link(self.spec())

        class ScriptedRng:
            def __init__(self, draws):
                self.draws = list(draws)

            def random(self):
                return self.draws.pop(0)

        # first attempt lost (0.1 < 0.5), second delivered (0.9 >= 0.5)
        outcome = link.reliable_transfer(
            1000, LinkFault(loss_prob=0.5),
            RetryPolicy(timeout_ms=60.0, backoff_ms=20.0),
            ScriptedRng([0.1, 0.9]),
        )
        assert outcome.delivered
        assert outcome.attempts == 2
        assert outcome.dropped == 1
        assert link.messages_dropped == 1
        assert link.messages_sent == 1
        # timeout of the lost attempt plus the real transfer (3 ms)
        assert outcome.elapsed_ms == pytest.approx(63.0)


class TestExplicitSeedRequired:
    """Silent seed-0 fallbacks were removed: randomness must be owned.

    Regression tests for the reprolint audit — a jittered link or a
    channel built without an explicit seed/rng used to share the
    hard-coded ``default_rng(0)`` stream.
    """

    def test_channel_without_seed_or_rng_raises(self):
        with pytest.raises(ValueError, match="explicit rng or seed"):
            DuplexChannel()

    def test_jittered_link_without_rng_raises(self):
        spec = LinkSpec(bandwidth_mbps=10.0, jitter_ms_std=0.5)
        with pytest.raises(ValueError, match="explicit"):
            Link(spec)

    def test_jitter_free_link_needs_no_rng(self):
        link = Link(LinkSpec(bandwidth_mbps=10.0))
        assert link.transfer_ms(100) > 0.0

    def test_seeded_channel_still_deterministic(self):
        a = DuplexChannel(seed=7)
        b = DuplexChannel(seed=7)
        assert a.round_trip_ms(1000, 1000) == b.round_trip_ms(1000, 1000)


class TestDuplexChannelRNG:
    def test_directions_get_distinct_streams(self):
        spec = LinkSpec(bandwidth_mbps=10.0, propagation_ms=1.0,
                        jitter_ms_std=1.0)
        channel = DuplexChannel(uplink=spec, downlink=spec, seed=0)
        ups = [channel.up.transfer_ms(100) for _ in range(8)]
        downs = [channel.down.transfer_ms(100) for _ in range(8)]
        assert ups != downs

    def test_different_seeds_give_different_jitter(self):
        spec = LinkSpec(bandwidth_mbps=10.0, propagation_ms=1.0,
                        jitter_ms_std=1.0)
        a = DuplexChannel(uplink=spec, downlink=spec, seed=1)
        b = DuplexChannel(uplink=spec, downlink=spec, seed=2)
        assert [a.up.transfer_ms(100) for _ in range(8)] != [
            b.up.transfer_ms(100) for _ in range(8)
        ]

    def test_same_seed_reproduces(self):
        spec = LinkSpec(bandwidth_mbps=10.0, propagation_ms=1.0,
                        jitter_ms_std=1.0)
        a = DuplexChannel(uplink=spec, downlink=spec, seed=3)
        b = DuplexChannel(uplink=spec, downlink=spec, seed=3)
        assert [a.up.transfer_ms(100) for _ in range(8)] == [
            b.up.transfer_ms(100) for _ in range(8)
        ]

    def test_fault_draws_do_not_perturb_jitter_stream(self):
        spec = LinkSpec(bandwidth_mbps=10.0, propagation_ms=1.0,
                        jitter_ms_std=1.0)
        a = DuplexChannel(uplink=spec, downlink=spec, seed=4)
        b = DuplexChannel(uplink=spec, downlink=spec, seed=4)
        # interleave fault-rng draws on a only
        a.up_transfer(100, LinkFault(loss_prob=0.5))
        a_vals = [a.down.transfer_ms(100) for _ in range(8)]
        b.up.transfer_ms(100)  # consume the same up-jitter draw count... 
        b_vals = [b.down.transfer_ms(100) for _ in range(8)]
        assert a_vals == pytest.approx(b_vals)

    def test_channel_drop_counters_aggregate_directions(self):
        channel = DuplexChannel(seed=0)
        channel.up_transfer(100, LinkFault(loss_prob=1.0),
                            RetryPolicy(max_attempts=2))
        channel.down_transfer(50, LinkFault(loss_prob=1.0),
                              RetryPolicy(max_attempts=1))
        assert channel.messages_dropped == 3
        assert channel.bytes_dropped == 250


class TestWireFaults:
    def outcome(self, fault, seed=0, policy=None):
        link = Link(LinkSpec(bandwidth_mbps=10.0))
        policy = policy or RetryPolicy(max_attempts=3, timeout_ms=50.0,
                                       backoff_ms=10.0)
        return link, link.reliable_transfer(
            1000, fault, policy, np.random.default_rng(seed)
        )

    def test_corrupt_attempts_cost_retries_like_losses(self):
        link, outcome = self.outcome(LinkFault(corrupt_prob=1.0))
        assert not outcome.delivered
        assert outcome.corrupt_attempts == 3
        assert link.messages_corrupted == 3
        assert link.bytes_corrupted == 3000
        assert link.giveups == 1

    def test_giveups_distinct_from_recovered_retries(self):
        # A transfer that recovers after losses books drops, not giveups.
        link = Link(LinkSpec(bandwidth_mbps=10.0))
        policy = RetryPolicy(max_attempts=8, timeout_ms=50.0, backoff_ms=0.0)
        outcome = link.reliable_transfer(
            1000, LinkFault(loss_prob=0.5), policy,
            np.random.default_rng(3),
        )
        assert outcome.delivered
        assert link.giveups == 0
        assert link.messages_dropped == outcome.dropped

    def test_duplicate_flagged_on_delivery(self):
        link, outcome = self.outcome(LinkFault(duplicate_prob=1.0))
        assert outcome.delivered and outcome.duplicated
        assert not outcome.reordered

    def test_reorder_flagged_on_delivery(self):
        link, outcome = self.outcome(LinkFault(reorder_prob=1.0))
        assert outcome.delivered and outcome.reordered
        assert not outcome.duplicated

    def test_clean_fault_consumes_no_rng(self):
        # Zero-probability kinds must not draw: a fault mix without a
        # kind keeps the exact RNG stream it had before the kind existed.
        link = Link(LinkSpec(bandwidth_mbps=10.0))
        rng = np.random.default_rng(7)
        witness = np.random.default_rng(7)
        link.reliable_transfer(1000, LinkFault(), RetryPolicy(), rng)
        assert rng.random() == witness.random()

    def test_wire_probabilities_validated(self):
        for field in ("corrupt_prob", "duplicate_prob", "reorder_prob"):
            with pytest.raises(ValueError):
                LinkFault(**{field: 1.5})

    def test_duplex_channel_aggregates_wire_counters(self):
        channel = DuplexChannel(seed=0)
        channel.up.record_corrupt(100)
        channel.down.record_corrupt(50)
        channel.up.giveups += 1
        assert channel.messages_corrupted == 2
        assert channel.giveups == 1
