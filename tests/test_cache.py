"""Content-addressed artifact cache: integrity, keys, concurrency.

The cache (ISSUE 5) is safety-critical for the report harness — a wrong
hit would silently substitute one scenario's trained models for
another's. These tests pin down:

* round-trips (``put`` then ``get`` returns an equal value, hit/miss
  counters move as documented);
* key construction (every key part matters, ordering of parts does not);
* corruption handling (flipped payload bytes, truncation and garbage
  files are detected and reported as *misses*, never bad values);
* concurrent writers (two processes racing on one key leave exactly one
  valid entry and no temp-file litter — the atomic-rename protocol).
"""

import os
import pickle
import subprocess
import sys

import pytest

from repro.cache import (
    MAGIC,
    ArtifactCache,
    default_cache_root,
    get_active_cache,
    use_cache,
)
from repro.obs import MetricsRegistry


def metric_value(registry, name):
    for m in registry.export():
        if m["kind"] == "counter" and m["name"] == name:
            return m["value"]
    return 0.0


class TestRoundTrip:
    def test_put_then_get_returns_equal_value(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = cache.key_for(kind="test", seed=3)
        payload = {"a": [1, 2, 3], "b": (4.5, "six")}
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert (cache.hits, cache.misses, cache.puts) == (1, 0, 1)

    def test_absent_key_is_a_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        assert cache.get(cache.key_for(kind="nope")) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_counters_reach_registry(self, tmp_path):
        registry = MetricsRegistry()
        cache = ArtifactCache(str(tmp_path), registry=registry)
        key = cache.key_for(kind="test")
        cache.get(key)
        cache.put(key, "v")
        cache.get(key)
        assert metric_value(registry, "cache_misses_total") == 1.0
        assert metric_value(registry, "cache_hits_total") == 1.0
        assert metric_value(registry, "cache_puts_total") == 1.0

    def test_stats_and_clear(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        for i in range(3):
            cache.put(cache.key_for(i=i), i)
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert cache.clear() == 3
        assert cache.stats().entries == 0
        # The shard directories were removed too.
        assert list(tmp_path.iterdir()) == []


class TestKeys:
    def test_every_part_changes_the_key(self):
        cache = ArtifactCache(default_cache_root())
        base = cache.key_for(kind="trained-models", scenario="S1", seed=0)
        assert base != cache.key_for(kind="trained-models", scenario="S2", seed=0)
        assert base != cache.key_for(kind="trained-models", scenario="S1", seed=1)
        assert base != cache.key_for(kind="other", scenario="S1", seed=0)

    def test_part_order_is_irrelevant(self):
        cache = ArtifactCache(default_cache_root())
        assert cache.key_for(a=1, b=2) == cache.key_for(b=2, a=1)

    def test_key_is_hex_sha256(self):
        cache = ArtifactCache(default_cache_root())
        key = cache.key_for(x=1)
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")


class TestCorruption:
    def _entry_path(self, cache):
        paths = list(cache.entry_paths())
        assert len(paths) == 1
        return paths[0]

    @pytest.mark.parametrize("mutation", ["flip", "truncate", "garbage", "magic"])
    def test_corrupt_entry_is_a_miss(self, tmp_path, mutation):
        registry = MetricsRegistry()
        cache = ArtifactCache(str(tmp_path), registry=registry)
        key = cache.key_for(kind="test")
        cache.put(key, list(range(100)))
        path = self._entry_path(cache)
        blob = bytearray(open(path, "rb").read())
        if mutation == "flip":
            blob[-1] ^= 0xFF
        elif mutation == "truncate":
            blob = blob[: len(blob) // 2]
        elif mutation == "garbage":
            blob = bytearray(b"not a cache entry at all")
        else:  # magic
            blob[0] ^= 0xFF
        with open(path, "wb") as f:
            f.write(bytes(blob))
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert cache.misses == 1
        assert metric_value(registry, "cache_corrupt_total") == 1.0

    def test_wrong_digest_payload_is_rejected(self, tmp_path):
        # A well-formed entry whose payload does not match its digest.
        cache = ArtifactCache(str(tmp_path))
        key = cache.key_for(kind="test")
        cache.put(key, "original")
        path = self._entry_path(cache)
        with open(path, "rb") as f:
            magic = f.read(len(MAGIC))
            digest = f.read(65)
        with open(path, "wb") as f:
            f.write(magic + digest + pickle.dumps("tampered"))
        assert cache.get(key) is None
        assert cache.corrupt == 1


class TestActivation:
    def test_no_ambient_cache_by_default(self):
        assert get_active_cache() is None

    def test_use_cache_scopes_activation(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        with use_cache(cache):
            assert get_active_cache() is cache
            inner = ArtifactCache(str(tmp_path))
            with use_cache(inner):
                assert get_active_cache() is inner
            assert get_active_cache() is cache
        assert get_active_cache() is None


_WRITER = """
import sys
from repro.cache import ArtifactCache

root, tag = sys.argv[1], sys.argv[2]
cache = ArtifactCache(root)
key = cache.key_for(kind="race")
for _ in range(200):
    cache.put(key, {"tag": tag, "blob": list(range(2000))})
value = cache.get(key)
assert value is not None and value["tag"] in ("a", "b")
"""


class TestConcurrency:
    def test_racing_writers_leave_one_valid_entry(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER, str(tmp_path), tag],
                env=env,
                stderr=subprocess.PIPE,
            )
            for tag in ("a", "b")
        ]
        for proc in procs:
            _, stderr = proc.communicate(timeout=120)
            assert proc.returncode == 0, stderr.decode()

        cache = ArtifactCache(str(tmp_path))
        paths = list(cache.entry_paths())
        assert len(paths) == 1
        value = cache.get(cache.key_for(kind="race"))
        assert value is not None and value["tag"] in ("a", "b")
        # No temp-file litter from either writer.
        leftovers = [
            name
            for _, _, files in os.walk(tmp_path)
            for name in files
            if ".tmp." in name
        ]
        assert leftovers == []
