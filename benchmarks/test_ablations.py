"""Ablation benches for BALB's design choices (DESIGN.md Section 5).

* batch-awareness (Definition 4) on/off,
* coverage-ordered object visiting (Algorithm 1 line 2) on/off,
* distributed stage on/off at the pipeline level (BALB vs BALB-Cen),
* BALB vs the exact optimum on small instances.
"""

import pytest

from repro.experiments.ablations import (
    ablate_batch_awareness,
    ablate_coverage_ordering,
    measure_optimality_gap,
)
from repro.experiments.fig12_recall import run_policies

from conftest import bench_config


@pytest.mark.benchmark(group="ablations")
def test_ablation_batching(benchmark):
    result = benchmark.pedantic(
        lambda: ablate_batch_awareness(n_trials=30, n_objects=30, seed=0),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nbatch-awareness: with {result.mean_latency_on:.1f} ms, "
        f"without {result.mean_latency_off:.1f} ms "
        f"(degradation {result.degradation:.3f}x)"
    )
    # Removing batch-awareness must not help, and typically hurts.
    assert result.degradation >= 0.999
    assert result.degradation > 1.02


@pytest.mark.benchmark(group="ablations")
def test_ablation_ordering(benchmark):
    result = benchmark.pedantic(
        lambda: ablate_coverage_ordering(n_trials=30, n_objects=30, seed=0),
        rounds=1,
        iterations=1,
    )
    print(
        f"\ncoverage-ordering: with {result.mean_latency_on:.1f} ms, "
        f"without {result.mean_latency_off:.1f} ms "
        f"(degradation {result.degradation:.3f}x)"
    )
    assert result.degradation >= 0.99  # never materially harmful


@pytest.mark.benchmark(group="ablations")
def test_ablation_optimality(benchmark):
    result = benchmark.pedantic(
        lambda: measure_optimality_gap(n_trials=20, n_objects=12, seed=0),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nBALB vs optimal on {result.n_instances} instances: "
        f"mean {result.mean_ratio:.3f}, worst {result.worst_ratio:.3f}"
    )
    assert result.mean_ratio >= 1.0
    assert result.mean_ratio < 1.15  # near-optimal on average
    assert result.worst_ratio < 1.6


@pytest.mark.benchmark(group="ablations")
def test_ablation_distributed_stage(benchmark, trained_by_scenario):
    """Pipeline-level: disabling the distributed stage (BALB-Cen) saves a
    little latency but costs recall in dynamic scenes — the paper's
    argument for running both stages."""
    runs = benchmark.pedantic(
        lambda: run_policies(
            "S3",
            policies=("balb", "balb-cen"),
            config=bench_config(),
            trained=trained_by_scenario["S3"],
        ),
        rounds=1,
        iterations=1,
    )
    balb, cen = runs["balb"], runs["balb-cen"]
    print(
        f"\nBALB     : recall {balb.object_recall():.3f}, "
        f"latency {balb.mean_slowest_latency():.1f} ms"
        f"\nBALB-Cen : recall {cen.object_recall():.3f}, "
        f"latency {cen.mean_slowest_latency():.1f} ms"
    )
    assert balb.object_recall() > cen.object_recall()
