"""Overhead budget for the tracing layer (acceptance criterion: <5%).

Two measurements back the claim that instrumentation is free when off:

* the shared no-op span costs so little that even the full span count of a
  traced golden run adds under 5% to the untraced wall time;
* an actually traced run stays within a small constant factor of the
  untraced one (tracing *enabled* is allowed to cost, but not explode).
"""

import time

import pytest

from repro.obs.trace import NOOP_TRACER, Tracer
from repro.runtime.pipeline import run_policy
from repro.scenarios.aic21 import get_scenario

from conftest import bench_config

N_NOOP_ITER = 100_000


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _spin(tracer, iterations=N_NOOP_ITER):
    for _ in range(iterations):
        with tracer.span("x"):
            pass


@pytest.mark.benchmark(group="obs")
def test_disabled_tracing_within_overhead_budget(benchmark, trained_by_scenario):
    """per-noop-span cost x spans-per-run < 5% of the untraced wall time."""
    scenario = get_scenario("S1", seed=0)
    trained = trained_by_scenario["S1"]

    untraced_cfg = bench_config("balb")
    untraced_wall = _best_of(
        lambda: run_policy(scenario, "balb", untraced_cfg, trained)
    )

    traced_cfg = bench_config("balb", trace=True)
    n_spans = len(run_policy(scenario, "balb", traced_cfg, trained).spans)
    assert n_spans > 0

    benchmark(_spin, NOOP_TRACER)
    per_span = _best_of(lambda: _spin(NOOP_TRACER)) / N_NOOP_ITER

    budget = 0.05 * untraced_wall
    spent = per_span * n_spans
    print(
        f"\nnoop span: {per_span * 1e9:.0f} ns; {n_spans} spans/run -> "
        f"{spent * 1e3:.3f} ms of {budget * 1e3:.3f} ms budget "
        f"(untraced run {untraced_wall * 1e3:.1f} ms)"
    )
    assert spent < budget


@pytest.mark.benchmark(group="obs")
def test_enabled_tracing_stays_cheap(benchmark, trained_by_scenario):
    """A fully traced run is within a small factor of the untraced one."""
    scenario = get_scenario("S1", seed=0)
    trained = trained_by_scenario["S1"]

    untraced_cfg = bench_config("balb")
    traced_cfg = bench_config("balb", trace=True)

    untraced = _best_of(
        lambda: run_policy(scenario, "balb", untraced_cfg, trained)
    )
    result = benchmark(
        lambda: run_policy(scenario, "balb", traced_cfg, trained)
    )
    traced = _best_of(
        lambda: run_policy(scenario, "balb", traced_cfg, trained)
    )
    print(
        f"\nuntraced {untraced * 1e3:.1f} ms, traced {traced * 1e3:.1f} ms "
        f"({traced / untraced:.2f}x, {len(result.spans)} spans)"
    )
    assert traced < untraced * 1.5


@pytest.mark.benchmark(group="obs")
def test_live_span_microcost(benchmark):
    """Cost of one *recording* span, for the docs' overhead table."""
    tracer = Tracer()
    benchmark(_spin, tracer, 10_000)
    assert len(tracer.records) >= 10_000
