"""FIG14 bench: scheduling horizon sweep (paper Figure 14).

Regenerates recall and slowest-camera latency for T in {2, 5, 10, 20, 30}
on S1. Paper shape: latency falls monotonically-ish with T (full-frame
cost amortized over more frames) while recall trends downward; T = 10 is
a good trade-off.
"""

import pytest

from repro.experiments.fig14_horizon import sweep_horizons
from repro.experiments.report import format_table

HORIZONS = (2, 5, 10, 20, 30)


@pytest.mark.benchmark(group="fig14")
def test_fig14_horizon_sweep(benchmark, trained_by_scenario):
    rows = benchmark.pedantic(
        lambda: sweep_horizons(
            "S1",
            horizons=HORIZONS,
            frames_per_point=200,
            seed=0,
            trained=trained_by_scenario["S1"],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["horizon T", "recall", "slowest-cam ms"],
            [(r.horizon, r.recall, round(r.slowest_camera_ms, 1)) for r in rows],
            title="Figure 14 (S1): horizon length sweep",
        )
    )
    latencies = [r.slowest_camera_ms for r in rows]
    recalls = [r.recall for r in rows]

    # Latency falls sharply as the key-frame cost is amortized.
    assert latencies[0] > latencies[2] > latencies[-1]
    assert latencies[0] / latencies[-1] > 3.0
    # Recall trends down with longer horizons (short vs long extremes).
    assert recalls[0] >= recalls[-1] - 0.02
    # T=10 is a good trade-off: most of the latency win at modest recall cost.
    t10 = rows[HORIZONS.index(10)]
    assert t10.slowest_camera_ms < latencies[0] / 2.5
    assert t10.recall > recalls[0] - 0.08
