"""FIG2 bench: per-camera workload variability on S1 (paper Figure 2).

Regenerates the objects-per-camera time series (sampled every 2 s, like
the paper) and prints the per-camera mean/std/CV rows. The paper's point —
large absolute and relative temporal variation — is asserted as a shape
property.
"""

import pytest

from repro.experiments.fig2_workload import workload_trace
from repro.experiments.report import format_table
from repro.scenarios.aic21 import get_scenario


@pytest.mark.benchmark(group="fig2")
def test_fig2_workload_variability(benchmark):
    trace = benchmark.pedantic(
        lambda: workload_trace(
            scenario=get_scenario("S1", seed=0),
            duration_s=120.0,
            sample_interval_s=2.0,
            warmup_s=30.0,
        ),
        rounds=1,
        iterations=1,
    )
    means = trace.mean_per_camera()
    stds = trace.std_per_camera()
    cvs = trace.coefficient_of_variation()
    print()
    print(
        format_table(
            ["camera", "mean objs", "std", "CV"],
            [
                (cam, round(means[cam], 1), round(stds[cam], 1), cvs[cam])
                for cam in sorted(means)
            ],
            title="Figure 2: S1 per-camera workload (sampled every 2 s)",
        )
    )
    cams = sorted(means)
    swing = trace.relative_workload_swings(cams[0], cams[-1])
    print(f"relative-workload flips between cam{cams[0]}/cam{cams[-1]}: "
          f"{swing:.2f} of samples")

    # Paper shape: workload is non-trivial and varies substantially.
    assert all(m > 0 for m in means.values())
    assert max(cvs.values()) > 0.15
    # Relative workload between camera pairs changes over time.
    assert any(
        trace.relative_workload_swings(a, b) > 0.0
        for a in cams
        for b in cams
        if a < b
    )
