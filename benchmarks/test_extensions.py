"""Benches for the Section V extensions.

EXT-OCC: under inter-object occlusion, redundant assignment (k=2) recovers
recall at bounded latency cost. EXT-BW: min view cover saves uplink
bandwidth vs streaming every camera. EXT-EN: the energy-aware scheduler
never spends more energy than BALB under a loose deadline.
"""

import pytest

from repro.experiments.extensions import (
    bandwidth_study,
    energy_study,
    occlusion_redundancy_study,
    synchronization_study,
)

from conftest import bench_config


@pytest.mark.benchmark(group="extensions")
def test_ext_occlusion_redundancy(benchmark, trained_by_scenario):
    study = benchmark.pedantic(
        lambda: occlusion_redundancy_study(
            "S3", config=bench_config(), trained=trained_by_scenario["S3"]
        ),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nEXT-OCC (S3): k=1 recall {study.recall_k1:.3f} @ "
        f"{study.latency_k1:.1f} ms | k=2 recall {study.recall_k2:.3f} @ "
        f"{study.latency_k2:.1f} ms"
    )
    # Redundancy recovers occlusion losses...
    assert study.recall_k2 >= study.recall_k1 - 0.005
    # ...at a bounded latency premium.
    assert study.latency_cost < 1.6


@pytest.mark.benchmark(group="extensions")
def test_ext_bandwidth_cover(benchmark):
    study = benchmark.pedantic(
        lambda: bandwidth_study(n_trials=25, n_objects=15, seed=0),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nEXT-BW: {study.mean_cameras_selected:.1f}/{study.n_cameras} "
        f"cameras, {study.mean_cover_mbps:.1f} / "
        f"{study.all_streams_mbps:.1f} Mbps "
        f"({study.savings_fraction:.0%} saved)"
    )
    assert 0.0 <= study.savings_fraction < 1.0
    assert study.savings_fraction > 0.1
    assert study.mean_cameras_selected < study.n_cameras


@pytest.mark.benchmark(group="extensions")
def test_ext_energy_aware(benchmark):
    study = benchmark.pedantic(
        lambda: energy_study(n_trials=25, n_objects=20, deadline_ms=100.0,
                             seed=0),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nEXT-EN: energy {study.mean_energy_aware_mj:.0f} vs "
        f"{study.mean_energy_balb_mj:.0f} mJ "
        f"({study.energy_savings_fraction:.0%} saved), latency "
        f"{study.mean_latency_aware:.1f} vs {study.mean_latency_balb:.1f} ms"
    )
    assert study.energy_savings_fraction >= 0.0
    # The latency concession stays within the configured deadline regime.
    assert study.mean_latency_aware <= study.deadline_ms


@pytest.mark.benchmark(group="extensions")
def test_ext_synchronization(benchmark, trained_by_scenario):
    study = benchmark.pedantic(
        lambda: synchronization_study(
            "S3", lags=(0, 2, 5), config=bench_config(),
            trained=trained_by_scenario["S3"],
        ),
        rounds=1,
        iterations=1,
    )
    print("\nEXT-SYNC (S3):")
    for lag, recall, latency in zip(study.lags, study.recalls, study.latencies):
        print(f"  lag {lag}: recall {recall:.3f} @ {latency:.1f} ms")
    # Growing skew must not improve recall, and a real drop appears by
    # the largest lag.
    assert study.recalls[-1] <= study.recalls[0] + 0.01
    assert study.recall_drop > 0.0
