"""Micro-benchmarks of the scheduler's hot paths.

These measure real wall-clock timings (multiple rounds) of the components
whose costs Table II models: the central-stage BALB solve, the Hungarian
matcher and the KNN association queries. They document that the Python
implementation itself runs at interactive speed.
"""

import numpy as np
import pytest

from repro.association.pairwise import PairwiseAssociator
from repro.association.training import AssociationDataset
from repro.core.balb import balb_central
from repro.experiments.ablations import jetson_fleet_profiles, random_instance
from repro.geometry.box import BBox
from repro.ml.hungarian import hungarian


@pytest.mark.benchmark(group="micro")
def test_balb_central_speed(benchmark):
    """Central stage on a busy 5-camera / 40-object instance."""
    profiles = jetson_fleet_profiles(0)
    rng = np.random.default_rng(0)
    instance = random_instance(profiles, 40, rng)
    result = benchmark(lambda: balb_central(instance))
    assert len(result.assignment) == 40


@pytest.mark.benchmark(group="micro")
def test_hungarian_speed_20x20(benchmark):
    rng = np.random.default_rng(1)
    cost = rng.random((20, 20))
    pairs = benchmark(lambda: hungarian(cost))
    assert len(pairs) == 20


@pytest.mark.benchmark(group="micro")
def test_knn_association_query_speed(benchmark):
    """One pairwise visibility + location query, as run per object pair
    at every key frame."""
    rng = np.random.default_rng(2)
    ds = AssociationDataset()
    pair = ds.pair(0, 1)
    for _ in range(2000):
        cx, cy = rng.uniform(0, 1000), rng.uniform(0, 600)
        w = rng.uniform(30, 80)
        src = BBox.from_xywh(cx, cy, w, w * 0.7)
        pair.add(src, src.translate(150, 0) if cx < 500 else None)
    assoc = PairwiseAssociator().fit(ds)
    probe = BBox.from_xywh(250, 300, 50, 35)

    def query():
        return assoc.predict_box(0, 1, probe)

    result = benchmark(query)
    assert result is not None
