"""FIG12 bench: object recall by scheduling policy (paper Figure 12).

Regenerates the recall rows for Full / BALB-Ind / BALB-Cen / BALB / SP per
scenario. Shape assertions mirror the paper's three observations:
slicing costs almost no recall; the distributed stage recovers what the
central-only variant loses; and the full BALB stays close to Full.
"""

import pytest

from repro.experiments.fig12_recall import recall_rows, run_policies
from repro.experiments.report import format_table

from conftest import bench_config


@pytest.mark.benchmark(group="fig12")
@pytest.mark.parametrize("scenario", ["S1", "S2", "S3"])
def test_fig12_recall(benchmark, scenario, trained_by_scenario):
    runs = benchmark.pedantic(
        lambda: run_policies(
            scenario,
            config=bench_config(),
            trained=trained_by_scenario[scenario],
        ),
        rounds=1,
        iterations=1,
    )
    rows = recall_rows(runs)
    print()
    print(
        format_table(
            ["scenario", "policy", "object recall"],
            [(r.scenario, r.policy, r.recall) for r in rows],
            title=f"Figure 12 ({scenario}): object recall",
        )
    )
    recall = {r.policy: r.recall for r in rows}
    # Observation 1: tracking-based slicing barely hurts recall.
    assert recall["balb-ind"] >= recall["full"] - 0.08
    # Observation 2: the distributed stage recovers BALB-Cen's losses.
    assert recall["balb"] >= recall["balb-cen"] - 0.02
    # Headline: BALB's recall remains competitive with Full.
    assert recall["balb"] >= recall["full"] - 0.1
    # All recalls are meaningful probabilities.
    for value in recall.values():
        assert 0.5 <= value <= 1.0
