"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures and prints the
corresponding rows (run with ``pytest benchmarks/ --benchmark-only -s`` to
see them). Heavy end-to-end benchmarks share trained models per scenario
through session-scoped fixtures, and run one round each — the quantity
being measured is the experiment output, not micro-timing jitter.
"""

from __future__ import annotations

import pytest

from repro.runtime.pipeline import PipelineConfig, train_models
from repro.scenarios.aic21 import get_scenario

#: Scaled-down but statistically meaningful run lengths for benches.
BENCH_CONFIG = dict(
    horizon=10,
    n_horizons=20,
    warmup_s=30.0,
    train_duration_s=90.0,
    seed=0,
)


def bench_config(policy: str = "balb", **overrides) -> PipelineConfig:
    params = dict(BENCH_CONFIG)
    params.update(overrides)
    return PipelineConfig(policy=policy, **params)


@pytest.fixture(scope="session")
def trained_by_scenario():
    """Association models + device profiles per scenario, trained once."""
    out = {}
    for name in ("S1", "S2", "S3"):
        scenario = get_scenario(name, seed=0)
        out[name] = train_models(scenario, bench_config())
    return out
