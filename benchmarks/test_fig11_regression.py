"""FIG11 bench: location-regression comparison (paper Figure 11).

Regenerates the MAE rows for KNN vs homography vs linear vs RANSAC per
scenario. Paper shape: KNN reaches the lowest (or near-lowest) MAE in the
multi-angle scenarios S1/S3, and homography — which can only map
ground-plane points — is substantially worse there.
"""

import math

import pytest

from repro.experiments.fig11_regression import evaluate_regressors
from repro.experiments.report import format_table


@pytest.mark.benchmark(group="fig11")
@pytest.mark.parametrize("scenario", ["S1", "S2", "S3"])
def test_fig11_regression(benchmark, scenario):
    rows = benchmark.pedantic(
        lambda: evaluate_regressors(scenario, duration_s=120.0, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["scenario", "model", "MAE (px)"],
            [(r.scenario, r.model, round(r.mae_px, 1)) for r in rows],
            title=f"Figure 11 ({scenario}): location regression",
        )
    )
    by_model = {r.model: r.mae_px for r in rows}
    assert set(by_model) == {"knn", "homography", "linear", "ransac"}
    assert not math.isnan(by_model["knn"])
    assert by_model["knn"] < 60.0  # usable accuracy on 1280 px frames
    if scenario in ("S1", "S3"):
        # Multi-angle deployments: KNN clearly beats homography.
        assert by_model["knn"] < by_model["homography"]
        # And is at or near the best over all baselines.
        best = min(v for v in by_model.values() if not math.isnan(v))
        assert by_model["knn"] <= best * 1.3
