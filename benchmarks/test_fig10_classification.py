"""FIG10 bench: visibility-classifier comparison (paper Figure 10).

Regenerates the precision/recall rows for KNN vs SVM vs logistic vs
decision tree on all three scenarios. Shape assertions: every model is
usable (precision > 0.8 on this cleaner-than-life simulation) and KNN's
precision — the paper's headline metric — is at or near the top.
"""

import pytest

from repro.experiments.fig10_classification import evaluate_classifiers
from repro.experiments.report import format_table


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("scenario", ["S1", "S2", "S3"])
def test_fig10_classification(benchmark, scenario):
    rows = benchmark.pedantic(
        lambda: evaluate_classifiers(scenario, duration_s=120.0, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["scenario", "model", "precision", "recall", "f1"],
            [(r.scenario, r.model, r.precision, r.recall, r.f1) for r in rows],
            title=f"Figure 10 ({scenario}): visibility classification",
        )
    )
    by_model = {r.model: r for r in rows}
    assert set(by_model) == {"knn", "svm", "logistic", "decision-tree"}
    for row in rows:
        assert row.precision > 0.8, f"{row.model} precision collapsed"
        assert row.recall > 0.7, f"{row.model} recall collapsed"
    # Paper shape: KNN precision at or near the best across models.
    best_precision = max(r.precision for r in rows)
    assert by_model["knn"].precision >= best_precision - 0.05
