"""TAB2 bench: per-frame latency overhead breakdown (paper Table II).

Regenerates the central / tracking / distributed / batching overhead
columns for each scenario under full BALB. Paper reference rows (ms):

    S1: central 2.59, tracking 18.90, distributed 0.08, batching  7.53, total 29.10
    S2: central 1.11, tracking 21.43, distributed 0.09, batching 13.21, total 35.84
    S3: central 2.27, tracking 11.55, distributed 0.22, batching 19.86, total 33.90

Shape assertions: tracking and batching dominate; the distributed stage is
negligible (sub-millisecond); totals land in the paper's tens-of-ms range.
"""

import pytest

from repro.experiments.report import format_table
from repro.runtime.pipeline import run_policy
from repro.scenarios.aic21 import get_scenario

from conftest import bench_config


def measure(scenario, trained_by_scenario):
    config = bench_config()
    result = run_policy(
        get_scenario(scenario, seed=0), "balb", config,
        trained_by_scenario[scenario],
    )
    return result.overhead_breakdown()


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("scenario", ["S1", "S2", "S3"])
def test_table2_overhead(benchmark, scenario, trained_by_scenario):
    breakdown = benchmark.pedantic(
        lambda: measure(scenario, trained_by_scenario),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["scenario", "central", "tracking", "distributed", "batching",
             "total"],
            [
                (
                    scenario,
                    round(breakdown.get("central", 0.0), 2),
                    round(breakdown.get("tracking", 0.0), 2),
                    round(breakdown.get("distributed", 0.0), 2),
                    round(breakdown.get("batching", 0.0), 2),
                    round(breakdown["total"], 2),
                )
            ],
            title="Table II: per-frame overhead breakdown (ms)",
        )
    )
    # Distributed BALB is effectively free (paper: 0.08-0.22 ms).
    assert breakdown["distributed"] < 1.0
    # Tracking is a dominant component (paper: 11-21 ms).
    assert 5.0 < breakdown["tracking"] < 30.0
    # Central stage amortized per frame stays small (paper: 1-2.6 ms).
    assert breakdown["central"] < 6.0
    # Total overhead lands in the paper's tens-of-ms regime.
    assert 10.0 < breakdown["total"] < 60.0
    # Tracking + batching dominate the total.
    assert (
        breakdown["tracking"] + breakdown["batching"]
        > 0.6 * breakdown["total"]
    )
