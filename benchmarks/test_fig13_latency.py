"""FIG13 bench: per-frame inference latency + headline speedups
(paper Figure 13: 6.85x / 6.18x / 2.45x over Full; BALB > SP).

Regenerates the slowest-camera latency rows for Full / BALB-Ind / SP /
BALB per scenario and the derived multiplicative speedups.
"""

import pytest

from repro.experiments.fig12_recall import run_policies
from repro.experiments.fig13_latency import (
    LATENCY_POLICIES,
    latency_rows,
    speedup_summary,
)
from repro.experiments.report import format_table

from conftest import bench_config

#: Paper's reported BALB-vs-Full speedups per scenario (shape reference).
PAPER_SPEEDUPS = {"S1": 6.85, "S2": 6.18, "S3": 2.45}


@pytest.mark.benchmark(group="fig13")
@pytest.mark.parametrize("scenario", ["S1", "S2", "S3"])
def test_fig13_latency(benchmark, scenario, trained_by_scenario):
    runs = benchmark.pedantic(
        lambda: run_policies(
            scenario,
            policies=LATENCY_POLICIES,
            config=bench_config(),
            trained=trained_by_scenario[scenario],
        ),
        rounds=1,
        iterations=1,
    )
    rows = latency_rows(runs)
    summary = speedup_summary(runs)
    print()
    print(
        format_table(
            ["scenario", "policy", "slowest-cam ms", "speedup vs full"],
            [
                (r.scenario, r.policy, round(r.slowest_camera_ms, 1),
                 r.speedup_vs_full)
                for r in rows
            ],
            title=f"Figure 13 ({scenario}); paper speedup: "
            f"{PAPER_SPEEDUPS[scenario]}x",
        )
    )
    print(
        f"BALB speedups — vs Full: {summary.balb_vs_full:.2f}x, "
        f"vs Ind: {summary.balb_vs_ind:.2f}x, vs SP: {summary.balb_vs_sp:.2f}x"
    )

    # Headline shape: a multiplicative speedup over Full (paper: 2.45-6.85x).
    assert summary.balb_vs_full > 2.0
    # BALB never loses to redundant independent tracking.
    assert summary.balb_vs_ind > 0.95
    # BALB never loses to static partitioning (paper: 1.88x mean win).
    assert summary.balb_vs_sp > 0.9
    # Full is the slowest policy everywhere.
    lat = {r.policy: r.slowest_camera_ms for r in rows}
    assert lat["full"] == max(lat.values())


@pytest.mark.benchmark(group="fig13")
def test_fig13_cross_scenario_shape(benchmark, trained_by_scenario):
    """S3 (busy fork, least overlap) shows the smallest speedup — the
    paper's cross-scenario ordering."""

    def sweep():
        out = {}
        for scenario in ("S1", "S2", "S3"):
            runs = run_policies(
                scenario,
                policies=("full", "balb"),
                config=bench_config(),
                trained=trained_by_scenario[scenario],
            )
            out[scenario] = (
                runs["full"].mean_slowest_latency()
                / runs["balb"].mean_slowest_latency()
            )
        return out

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("BALB-vs-Full speedups:", {k: round(v, 2) for k, v in speedups.items()})
    print("paper reference      :", PAPER_SPEEDUPS)
    assert speedups["S3"] == min(speedups.values())
